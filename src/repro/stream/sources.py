"""Edge sources: resumable, retryable record suppliers for the runner.

The ingestion runtime separates *where records come from* (this module)
from *what to do with them* (:mod:`repro.stream.runner`).  A source is
anything implementing :class:`EdgeSource`:

* it yields :class:`SourceRecord`\\ s — ``(offset, value, line_number)``
  where ``offset`` is a dense 0-based record index and ``value`` is the
  raw record (a text line, a tuple, or an :class:`~repro.graph.stream.Edge`),
* it can start from any offset (``records(start_offset=...)``), which is
  what makes crash recovery *exact*: a checkpoint stores the committed
  offset and the source replays from there, and
* re-iterating yields the identical record at every offset (sources are
  deterministic), so a resumed run is bit-identical to an uninterrupted
  one.

Sources deliberately do **not** parse or validate — malformed lines are
the runner's job to dead-letter, so a source never aborts on data it
merely transports.

Transient I/O failures are handled by :class:`RetryingSource`, which
wraps any source with a :class:`RetryPolicy` (exponential backoff with
decorrelated jitter and an attempt cap).  Because every source is
offset-addressable, a retry re-opens the underlying source *at the
first undelivered offset* — no record is skipped or duplicated across a
retry, which the fault-injection suite pins down.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, NamedTuple, Optional, Sequence, Union

from repro.errors import ConfigurationError, RetryExhaustedError

__all__ = [
    "SourceRecord",
    "EdgeSource",
    "FileEdgeSource",
    "IteratorEdgeSource",
    "SyntheticEdgeSource",
    "RetryPolicy",
    "RetryingSource",
]

PathLike = Union[str, Path]


class SourceRecord(NamedTuple):
    """One raw record from a source, before parsing or validation.

    ``offset`` is the dense record index (comments and blank lines are
    never counted); ``line_number`` is the 1-based physical line for
    file sources (``None`` otherwise) so dead-letter entries point at
    the exact line an operator should inspect.
    """

    offset: int
    value: object
    line_number: Optional[int] = None


class EdgeSource:
    """Protocol base: a deterministic, offset-addressable record supplier."""

    name: str = "source"

    def records(self, start_offset: int = 0) -> Iterator[SourceRecord]:
        """Yield records with ``offset >= start_offset``, in order."""
        raise NotImplementedError


class FileEdgeSource(EdgeSource):
    """Stream raw data lines from a SNAP-format edge-list file.

    Yields the stripped text of every data line (value is a ``str``);
    ``#``/``%`` comments and blank lines are skipped without consuming
    an offset.  Parsing is left to the consumer so malformed lines can
    be dead-lettered with their line number instead of aborting the
    file.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.name = str(path)

    def records(self, start_offset: int = 0) -> Iterator[SourceRecord]:
        offset = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text or text.startswith(("#", "%")):
                    continue
                if offset >= start_offset:
                    yield SourceRecord(offset, text, line_number)
                offset += 1

    def __repr__(self) -> str:
        return f"FileEdgeSource({str(self.path)!r})"


class IteratorEdgeSource(EdgeSource):
    """Serve records from an in-memory sequence (or a replay factory).

    Accepts either a :class:`Sequence` (replayed by slicing — resuming
    from offset *n* is O(1)) or a zero-argument callable returning a
    fresh iterable each time (resuming skips *n* records).  A bare
    one-shot iterator is rejected: it cannot be replayed, so it cannot
    participate in crash recovery or retries.
    """

    def __init__(self, records: Union[Sequence[object], Callable[[], Iterable[object]]], name: str = "iterator") -> None:
        if not callable(records) and not isinstance(records, Sequence):
            raise ConfigurationError(
                "IteratorEdgeSource needs a Sequence or a factory callable; "
                f"a one-shot {type(records).__name__} cannot be replayed for "
                "resume/retry"
            )
        self._records = records
        self.name = name

    def records(self, start_offset: int = 0) -> Iterator[SourceRecord]:
        if callable(self._records):
            iterator: Iterable[object] = self._records()
            for offset, value in enumerate(iterator):
                if offset >= start_offset:
                    yield SourceRecord(offset, value)
        else:
            for offset in range(start_offset, len(self._records)):
                yield SourceRecord(offset, self._records[offset])

    def __repr__(self) -> str:
        return f"IteratorEdgeSource(name={self.name!r})"


class SyntheticEdgeSource(IteratorEdgeSource):
    """A named registry dataset served as a source (for drills/demos).

    The dataset is materialised once (registry datasets are synthetic
    and seed-deterministic anyway) so offsets are stable across resume.
    """

    def __init__(self, dataset: str, seed: int = 0) -> None:
        from repro.graph import datasets  # deferred: heavy import

        super().__init__(datasets.load(dataset, seed=seed), name=f"dataset:{dataset}")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and an attempt cap.

    ``delay(attempt)`` for attempt ``i`` (0-based) is
    ``min(max_delay, base_delay * multiplier**i)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates
    a fleet of consumers hammering a recovering NFS mount; the cap
    bounds how long a permanently-dead source can stall a runner before
    :class:`~repro.errors.RetryExhaustedError` surfaces.

    ``sleep`` is injectable so tests assert the schedule without
    actually sleeping.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The backoff before retry number ``attempt`` (0-based)."""
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter and rng is not None:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base

    def schedule(self) -> list:
        """The full jitterless backoff schedule (for docs and tests)."""
        return [self.delay(i) for i in range(self.max_attempts - 1)]


class RetryingSource(EdgeSource):
    """Wrap a source so transient ``IOError``\\ s trigger offset-exact retry.

    On an ``IOError`` (or ``OSError``) raised while iterating the
    underlying source, the wrapper backs off per the policy and re-opens
    the source at the first undelivered offset, so consumers downstream
    see a gapless, duplicate-free record sequence.  After
    ``max_attempts`` consecutive failures *without a single delivered
    record in between*, :class:`~repro.errors.RetryExhaustedError` is
    raised.  A successful delivery resets the attempt counter — a source
    that fails once an hour retries forever, a source that fails five
    times in a row is declared dead.
    """

    def __init__(self, source: EdgeSource, policy: Optional[RetryPolicy] = None) -> None:
        self.source = source
        self.policy = policy or RetryPolicy()
        self.name = source.name
        self.retries = 0  # total backoff cycles performed (for stats())

    def records(self, start_offset: int = 0) -> Iterator[SourceRecord]:
        rng = random.Random(self.policy.seed)
        next_offset = start_offset
        consecutive_failures = 0
        while True:
            try:
                for record in self.source.records(next_offset):
                    yield record
                    next_offset = record.offset + 1
                    consecutive_failures = 0
                return
            except (IOError, OSError) as error:
                consecutive_failures += 1
                if consecutive_failures >= self.policy.max_attempts:
                    raise RetryExhaustedError(
                        f"source {self.name!r} failed {consecutive_failures} "
                        f"consecutive attempts at offset {next_offset}: {error}",
                        attempts=consecutive_failures,
                        last_error=error,
                    ) from error
                self.retries += 1
                self.policy.sleep(self.policy.delay(consecutive_failures - 1, rng))

    def __repr__(self) -> str:
        return f"RetryingSource({self.source!r}, attempts={self.policy.max_attempts})"
