"""The fault-tolerant ingestion runner.

:class:`StreamRunner` is the long-lived consumer loop the paper's
deployment story assumes: it drives predictor updates from an
:class:`~repro.stream.sources.EdgeSource`, checkpoints atomically every
*N* records, resumes *exactly* from ``(checkpoint, offset)`` after a
crash, and routes contract-violating records to a dead-letter sink
instead of aborting.

The crash-recovery contract (pinned by the integration suite):

    For any fault schedule — transient I/O errors, corrupt lines,
    duplicates, a kill at any point — a runner resumed from its latest
    intact checkpoint produces a predictor whose sketch arrays are
    **bit-identical** to an uninterrupted single-pass run over the same
    stream.

The mechanism is an exactly-once offset discipline: the committed
offset counts every record *consumed* from the source (dead-lettered
and dropped records included, so quarantining never desynchronises
resume), a checkpoint snapshots ``(state, offset)`` atomically, and
sources replay deterministically from any offset.  There is no
"maybe-processed" window: a record is reflected in a checkpoint iff its
offset is below the checkpoint's.

Record contract — a record must be one of:

* a text line parseable by :func:`repro.graph.io.parse_stream_record`
  (optionally op-prefixed: ``add``/``+``/``delete``/``del``/``-``),
* a typed :class:`~repro.graph.stream.StreamRecord`,
* a ``(u, v)`` or ``(u, v, timestamp)`` tuple of non-negative ints
  (an :class:`~repro.graph.stream.Edge` qualifies; coerced to an
  ``add`` record), or
* anything else → dead-letter reason ``bad_record_type``.

Deletions are consumed only by dynamic predictors (built from
``SketchConfig(dynamic_mode=True)``); on an append-only runner any
delete dead-letters with reason ``unsupported_delete``, and a delete of
an edge the guarded stream never added dead-letters as
``delete_unseen_edge``.

Violations are handled per the ``policy``: ``"quarantine"`` (default)
dead-letters and continues; ``"strict"`` raises
:class:`~repro.errors.DeadLetterError` on the first violation.
Self-loops get their own knob (``self_loops="quarantine"|"drop"``)
because SNAP archives carry them routinely: drop matches the eager
readers, quarantine makes them visible in counters.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.config import SketchConfig
from repro.core.dynamic import DynamicMinHashPredictor
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError, DeadLetterError
from repro.graph.stream import Edge, StreamRecord
from repro.obs.export import PeriodicReporter
from repro.obs.registry import MetricsRegistry
from repro.stream.checkpoint import CheckpointManager
from repro.stream.deadletter import DeadLetter, DeadLetterSink, MemoryDeadLetters, REASONS
from repro.stream.policies import (
    ContractViolation,
    GuardVerdict,
    PolicySet,
    StreamGuard,
    coerce_record,
)
from repro.stream.sources import EdgeSource, RetryingSource, SourceRecord

__all__ = ["StreamRunner", "ContractViolation", "coerce_record"]

#: Backwards-compatible private alias (pre-parallel name).
_ContractViolation = ContractViolation


class StreamRunner:
    """Drive a predictor from a source with checkpoints and quarantine.

    Most applications reach this through the facade —
    :func:`repro.api.ingest` constructs and runs one (or the sharded
    :class:`~repro.parallel.ShardedRunner` when ``workers > 1``);
    direct construction stays supported for callers that need the
    reporter/clock knobs.

    Parameters
    ----------
    source:
        Any :class:`EdgeSource` (wrap flaky ones in
        :class:`~repro.stream.sources.RetryingSource` — the runner
        reports its retry count in :meth:`stats`).
    predictor:
        An existing predictor to continue filling; default is a fresh
        :class:`MinHashLinkPredictor` built from ``config``.
    checkpoint_manager / checkpoint_every:
        Snapshot cadence in *consumed records*; ``0`` disables periodic
        checkpoints (a final one is still written when the source is
        exhausted, if a manager is configured).
    dead_letters:
        Sink for quarantined records; default an in-memory sink.
    policy:
        ``"quarantine"`` routes violations aside; ``"strict"`` raises
        :class:`DeadLetterError` on the first one.
    self_loops:
        ``"quarantine"`` (visible in counters) or ``"drop"`` (silent,
        matching the eager file readers).
    policies:
        Optional per-case :class:`~repro.stream.policies.PolicySet`
        (or its CLI string spelling).  Activates the full casebook
        contract — stream-level cases (duplicates, timestamp anomalies,
        hub explosions) and normalize-mode repairs — via a
        :class:`~repro.stream.policies.StreamGuard`.  ``None`` (the
        default) keeps the legacy parse-level contract exactly.
    guard:
        An explicit pre-configured :class:`StreamGuard` (to set
        ``hub_degree_limit``/``max_timestamp``, or to share detector
        state with a dead-letter replay).  Mutually exclusive with
        ``policies``; its ``self_loops`` must match the runner's.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding this
        runner's instruments (the ``ingest_*`` family); default a fresh
        enabled registry.  :meth:`stats` *reads* these instruments, so
        an explicitly disabled registry also blanks the legacy counters
        — pass one only when bookkeeping itself must cost nothing.
    reporter:
        Optional :class:`~repro.obs.export.PeriodicReporter` ticked
        once per consumed record (the ``--metrics-out``/
        ``--metrics-every`` flight recorder).  The runner never closes
        it — the owner decides when the final sample lands.
    batch_size:
        Clean-span batching for the block-ingest kernel
        (:meth:`~repro.core.predictor.MinHashLinkPredictor.update_block`).
        ``0``/``1`` (default) updates the predictor per record — the
        scalar path, byte-for-byte.  ``>1`` buffers guard-accepted
        edges and folds them in batches: the guard still judges every
        record in stream order (policy ordering, detector state and
        quarantine behavior are untouched), and pending edges are
        flushed before every checkpoint, before any strict-mode raise,
        and when :meth:`run` returns — so checkpoints and crash
        recovery stay bit-identical to scalar ingestion.  The only
        visible lag is cosmetic: the ``ingest_vertices`` gauge can
        trail the committed offset by up to one batch mid-run.
    clock:
        Injectable monotonic clock for checkpoint-age reporting.
    """

    def __init__(
        self,
        source: EdgeSource,
        *,
        predictor: Optional[MinHashLinkPredictor] = None,
        config: Optional[SketchConfig] = None,
        checkpoint_manager: Optional[CheckpointManager] = None,
        checkpoint_every: int = 0,
        dead_letters: Optional[DeadLetterSink] = None,
        policy: str = "quarantine",
        self_loops: str = "quarantine",
        policies: Union[PolicySet, str, None] = None,
        guard: Optional[StreamGuard] = None,
        metrics: Optional[MetricsRegistry] = None,
        reporter: Optional[PeriodicReporter] = None,
        batch_size: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if policy not in ("quarantine", "strict"):
            raise ConfigurationError(f'policy must be "quarantine" or "strict", got {policy!r}')
        if self_loops not in ("quarantine", "drop"):
            raise ConfigurationError(f'self_loops must be "quarantine" or "drop", got {self_loops!r}')
        if checkpoint_every < 0:
            raise ConfigurationError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if batch_size < 0:
            raise ConfigurationError(f"batch_size must be >= 0, got {batch_size}")
        if checkpoint_every and checkpoint_manager is None:
            raise ConfigurationError("checkpoint_every needs a checkpoint_manager")
        if guard is not None and policies is not None:
            raise ConfigurationError("pass policies or a pre-built guard, not both")
        self.source = source
        if predictor is not None:
            self.predictor = predictor
        elif config is not None and config.dynamic_mode:
            self.predictor = DynamicMinHashPredictor(config)
        else:
            self.predictor = MinHashLinkPredictor(config)
        #: Whether the predictor consumes deletes (and timestamps).
        self.dynamic = isinstance(self.predictor, DynamicMinHashPredictor)
        self.checkpoints = checkpoint_manager
        self.checkpoint_every = checkpoint_every
        self.dead_letters = dead_letters or MemoryDeadLetters()
        self.policy = policy
        self.self_loops = self_loops
        if guard is not None:
            if guard.self_loops != self_loops:
                raise ConfigurationError(
                    "the guard's self_loops setting must match the runner's"
                )
            if guard.supports_deletes and not self.dynamic:
                raise ConfigurationError(
                    "a delete-admitting guard needs a dynamic predictor; "
                    "append-only sketches cannot retract edges "
                    "(build with SketchConfig(dynamic_mode=True))"
                )
            self.guard = guard
        else:
            if isinstance(policies, str):
                policies = PolicySet.parse(policies)
            # A dynamic predictor admits deletes through the guard;
            # append-only predictors keep the legacy contract where any
            # delete dead-letters as ``unsupported_delete``.
            self.guard = StreamGuard(
                policies, self_loops=self_loops, supports_deletes=self.dynamic
            )
        self.policies = self.guard.policies
        self.clock = clock
        self.reporter = reporter
        self.batch_size = batch_size
        # Guard-accepted edges awaiting an update_block flush.  Dynamic
        # spans also carry timestamps and must stay homogeneous in op
        # (the batched kernel applies one op per call), so an op change
        # flushes the pending span first — order across ops is
        # preserved exactly as the scalar loop would apply them.
        self._pending_us: list = []
        self._pending_vs: list = []
        self._pending_ts: list = []
        self._pending_op: Optional[str] = None
        #: Committed offset: every record below it is reflected in state.
        self.offset = 0
        self.resumed_from: Optional[int] = None  # generation, if resumed
        self.source_exhausted = False
        self._last_checkpoint_offset: Optional[int] = None
        self._last_checkpoint_time: Optional[float] = None
        self._since_checkpoint = 0
        #: The instrument namespace behind stats() and the exporters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        records = self.metrics.counter(
            "ingest_records_total",
            "Records consumed from the source, by outcome",
            labelnames=("outcome",),
        )
        # Hot-path handles resolved once: _consume() pays one bound
        # attribute add per record, nothing else.
        self._m_ok = records.labels(outcome="ok")
        self._m_dead = records.labels(outcome="dead_letter")
        self._m_dropped = records.labels(outcome="dropped")
        self._m_strict_error = records.labels(outcome="strict_error")
        self._m_norm_removed = records.labels(outcome="normalized")
        self._m_dead_reasons = self.metrics.counter(
            "ingest_dead_letters_total",
            "Quarantined records by contract-violation reason",
            labelnames=("reason",),
        )
        self._m_normalized = self.metrics.counter(
            "ingest_normalized_total",
            "Normalize-mode repairs applied, by casebook case",
            labelnames=("reason",),
        )
        self._m_checkpoints = self.metrics.counter(
            "ingest_checkpoints_written_total", "Checkpoint generations written"
        )
        self._m_checkpoint_seconds = self.metrics.histogram(
            "ingest_checkpoint_write_seconds", "Wall seconds per checkpoint save"
        )
        self._m_run_seconds = self.metrics.counter(
            "ingest_run_seconds_total", "Wall seconds spent inside run()"
        )
        self._m_rate = self.metrics.gauge(
            "ingest_records_per_second", "Consumption rate of the most recent run() call"
        )
        # Read-time gauges: zero hot-path cost, always-current values.
        self.metrics.gauge(
            "ingest_offset", "Committed resume offset"
        ).set_function(lambda: self.offset)
        self.metrics.gauge(
            "ingest_checkpoint_age_seconds",
            "Seconds since the last checkpoint (-1 before the first)",
        ).set_function(
            lambda: -1.0
            if self._last_checkpoint_time is None
            else self.clock() - self._last_checkpoint_time
        )
        self.metrics.gauge(
            "ingest_vertices", "Vertices sketched by the predictor"
        ).set_function(lambda: self.predictor.vertex_count)
        self.metrics.gauge(
            "ingest_source_retries", "Transient-failure retries by the source"
        ).set_function(self._source_retries)

    def _source_retries(self) -> int:
        return self.source.retries if isinstance(self.source, RetryingSource) else 0

    # -- legacy counter attributes, now views of the registry ----------

    @property
    def records_in(self) -> int:
        """Records consumed, every outcome included."""
        return int(
            self._m_ok.value
            + self._m_dead.value
            + self._m_dropped.value
            + self._m_norm_removed.value
            + self._m_strict_error.value
        )

    @property
    def records_ok(self) -> int:
        return int(self._m_ok.value)

    @property
    def dropped(self) -> int:
        return int(self._m_dropped.value)

    @property
    def checkpoints_written(self) -> int:
        return int(self._m_checkpoints.value)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def resume(self) -> bool:
        """Restore ``(predictor, offset)`` from the newest intact
        checkpoint generation; returns whether one was found.

        Must be called before :meth:`run` consumes anything — resuming
        over a partially-advanced runner would double-count.
        """
        if self.checkpoints is None:
            raise ConfigurationError("resume() needs a checkpoint_manager")
        if self.records_in:
            raise ConfigurationError("resume() after records were consumed would double-count")
        checkpoint = self.checkpoints.load_latest()
        if checkpoint is None:
            return False
        self.predictor = checkpoint.predictor
        self.offset = checkpoint.offset
        self.resumed_from = checkpoint.generation
        self._last_checkpoint_offset = checkpoint.offset
        self._last_checkpoint_time = self.clock()
        return True

    # ------------------------------------------------------------------
    # The consumer loop
    # ------------------------------------------------------------------

    def run(self, max_records: Optional[int] = None) -> Dict[str, object]:
        """Consume from the committed offset; returns :meth:`stats`.

        ``max_records`` bounds the records consumed by *this call*
        (useful for drills and cooperative scheduling); ``None`` runs to
        source exhaustion.  A final checkpoint is written on exhaustion
        so a completed stream never replays; a ``max_records`` stop
        writes none — exactly what a crash looks like, which the
        kill-and-resume tests exploit.
        """
        started = self.clock()
        consumed_this_call = 0
        try:
            for record in self.source.records(self.offset):
                if max_records is not None and consumed_this_call >= max_records:
                    break
                self._consume(record)
                consumed_this_call += 1
                if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
                    self.checkpoint()  # flushes pending edges first
            else:
                self.source_exhausted = True
                if self.checkpoints is not None and self._since_checkpoint:
                    self.checkpoint()
        finally:
            # Whatever stopped the loop — exhaustion, max_records, a
            # source error — state must reflect every committed offset
            # before control leaves run().
            self._flush_pending()
        elapsed = self.clock() - started
        self._m_run_seconds.inc(elapsed)
        if elapsed > 0:
            self._m_rate.set(consumed_this_call / elapsed)
        return self.stats()

    def _ingest_edge(self, u: int, v: int) -> None:
        """Apply (or buffer, under ``batch_size``) one accepted edge."""
        if self.batch_size > 1:
            self._pending_us.append(u)
            self._pending_vs.append(v)
            if len(self._pending_us) >= self.batch_size:
                self._flush_pending()
        else:
            self.predictor.update(u, v)

    def _ingest_record(self, accepted: StreamRecord) -> None:
        """Apply (or buffer) one guard-accepted typed record.

        Dynamic predictors consume the op and timestamp; append-only
        predictors receive the legacy edge view (the guard has already
        dead-lettered any delete before it reaches them).
        """
        if not self.dynamic:
            self._ingest_edge(accepted.u, accepted.v)
            return
        if self.batch_size > 1:
            if self._pending_op is not None and accepted.op != self._pending_op:
                self._flush_pending()
            self._pending_op = accepted.op
            self._pending_us.append(accepted.u)
            self._pending_vs.append(accepted.v)
            self._pending_ts.append(accepted.timestamp)
            if len(self._pending_us) >= self.batch_size:
                self._flush_pending()
        else:
            self.predictor.apply(accepted)

    def _flush_pending(self) -> None:
        """Fold every buffered edge into the predictor (bit-identical
        to having applied them scalar, per the ``update_block`` /
        ``delete_block`` contracts)."""
        if self._pending_us:
            us, self._pending_us = self._pending_us, []
            vs, self._pending_vs = self._pending_vs, []
            ts, self._pending_ts = self._pending_ts, []
            op, self._pending_op = self._pending_op, None
            if not self.dynamic:
                self.predictor.update_block(us, vs)
            elif op == "delete":
                self.predictor.delete_block(us, vs, ts)
            else:
                self.predictor.update_block(us, vs, ts)

    def _consume(self, record: SourceRecord) -> None:
        verdict = self.guard.evaluate(record)
        disposition = verdict.disposition
        if disposition == "ok":
            self._ingest_record(self._accepted_record(verdict))
            self._m_ok.inc()
        elif disposition == "normalized":
            for case in verdict.cases:
                self._m_normalized.labels(case).inc()
            if verdict.edge is not None:
                self._ingest_record(self._accepted_record(verdict))
                self._m_ok.inc()
            else:
                self._m_norm_removed.inc()  # the repair was removal
        elif disposition == "drop":
            self._m_dropped.inc()  # silently dropped self-loop
        elif disposition == "strict" or self.policy == "strict":
            self._reject_strict(record, verdict)  # raises before commit
        else:  # quarantine
            self._quarantine(record, verdict)
            self._m_dead.inc()
            self._m_dead_reasons.labels(verdict.reason).inc()
        # Dead-lettered and dropped records still commit the offset:
        # quarantining must never desynchronise resume.
        self.offset = record.offset + 1
        self._since_checkpoint += 1
        if self.reporter is not None:
            self.reporter.tick()

    @staticmethod
    def _accepted_record(verdict: GuardVerdict) -> StreamRecord:
        """The typed record behind an accepting verdict (synthesized
        from the legacy edge view for guards predating the record
        field)."""
        if verdict.record is not None:
            return verdict.record
        edge = verdict.edge
        return StreamRecord.add_edge(edge.u, edge.v, edge.timestamp)

    def _coerce(self, record: SourceRecord) -> Optional[Edge]:
        """Validate one raw record; ``None`` means "drop silently"."""
        return coerce_record(record, self.self_loops)

    def _reject_strict(self, record: SourceRecord, verdict: GuardVerdict) -> None:
        # The offsets below the rejected record are committed, so their
        # edges must reach the predictor before the stream fails.
        self._flush_pending()
        self._m_strict_error.inc()
        raise DeadLetterError(
            f"offset {record.offset}"
            + (f" (line {record.line_number})" if record.line_number else "")
            + f": {verdict.detail}",
            reason=verdict.reason,
            offset=record.offset,
        )

    def _quarantine(self, record: SourceRecord, verdict: GuardVerdict) -> None:
        raw = record.value if isinstance(record.value, str) else repr(record.value)
        self.dead_letters.record(
            DeadLetter(
                offset=record.offset,
                reason=verdict.reason,
                raw=raw,
                line_number=record.line_number,
                detail=verdict.detail,
            )
        )

    # ------------------------------------------------------------------
    # Checkpoints and health
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot ``(predictor, committed offset)`` atomically now.

        Pending batched edges are flushed first — a checkpoint must
        reflect every record below its offset."""
        if self.checkpoints is None:
            raise ConfigurationError("no checkpoint_manager configured")
        self._flush_pending()
        started = self.clock()
        self.checkpoints.save(self.predictor, self.offset)
        finished = self.clock()
        self._m_checkpoint_seconds.observe(finished - started)
        self._m_checkpoints.inc()
        self._last_checkpoint_offset = self.offset
        self._last_checkpoint_time = finished
        self._since_checkpoint = 0

    def dead_letter_reasons(self) -> Dict[str, int]:
        """Per-reason quarantine counts from the registry, stably
        ordered by the reason vocabulary (a fresh dict every call — a
        caller mutating it cannot corrupt runner state)."""
        by_reason = {
            labels.get("reason", ""): int(series.value)
            for labels, series in self._m_dead_reasons.series()
        }
        ordered = {reason: by_reason[reason] for reason in REASONS if by_reason.get(reason)}
        for reason, count in by_reason.items():
            if count and reason not in ordered:
                ordered[reason] = count
        return ordered

    def normalized_reasons(self) -> Dict[str, int]:
        """Per-case counts of applied normalize-mode repairs (stably
        ordered by the reason vocabulary, defensive copy)."""
        by_reason = {
            labels.get("reason", ""): int(series.value)
            for labels, series in self._m_normalized.series()
        }
        ordered = {reason: by_reason[reason] for reason in REASONS if by_reason.get(reason)}
        for reason, count in by_reason.items():
            if count and reason not in ordered:
                ordered[reason] = count
        return ordered

    def stats(self) -> Dict[str, object]:
        """Runner health as a flat dict (the monitoring surface).

        Every counter is a *read* of the shared
        :class:`~repro.obs.registry.MetricsRegistry` — the Prometheus /
        JSON exposition of :attr:`metrics` and this dict can never
        drift.  Counters cover this runner's lifetime; ``offset`` is
        the resume position a crash right now would restart from (after
        replaying back to the last checkpoint).  The dict and its
        nested ``dead_letter_reasons`` are defensive snapshots: mutate
        them freely.
        """
        age: Optional[float] = None
        if self._last_checkpoint_time is not None:
            age = self.clock() - self._last_checkpoint_time
        dead_reasons = self.dead_letter_reasons()
        norm_reasons = self.normalized_reasons()
        return {
            "source": self.source.name,
            "policy": self.policy,
            "offset": self.offset,
            "records_in": self.records_in,
            "records_ok": self.records_ok,
            "dead_lettered": int(self._m_dead.value),
            "dead_letter_reasons": dead_reasons,
            "dropped": self.dropped,
            "normalized": int(sum(norm_reasons.values())),
            "normalized_reasons": norm_reasons,
            # Duplicate arrivals the guard caught (casebook policies
            # only — the legacy contract keeps no seen-edge state).
            # Duplicates that *reach* the predictor are idempotent on
            # the sketches but inflate degrees; see
            # MinHashLinkPredictor.update on the estimator bias.
            "duplicate_edges_detected": dead_reasons.get("duplicate_edge", 0)
            + norm_reasons.get("duplicate_edge", 0),
            "retries": self._source_retries(),
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_offset": self._last_checkpoint_offset,
            "last_checkpoint_age_seconds": age,
            "resumed_from_generation": self.resumed_from,
            "source_exhausted": self.source_exhausted,
            "vertices": self.predictor.vertex_count,
            "dynamic": self.dynamic,
        }
