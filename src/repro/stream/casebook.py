"""The adversarial input casebook: hostile cases, corpora, and replay.

The paper's thesis is that deployments fail on the *dark* part of the
data — the malformed, duplicated, mis-encoded long tail that clean
benchmark reproductions never exercise.  This module turns that long
tail into a tested contract:

* :data:`CASEBOOK` — the taxonomy: one :class:`Case` per dead-letter
  reason, with its level (parse vs stream), default policy, repair
  description, a real-world example, and a minimal hostile fixture
  (the table behind ``docs/CASEBOOK.md`` and ``repro-linkpred
  casebook``);
* :class:`SyntheticCorpusGenerator` — seeded hostile corpora where
  every line is labeled with its case and expected disposition under
  each policy mode, so CI can replay the whole casebook as a gate;
* :func:`replay_dead_letters` — the triage loop: read a quarantine
  file (or sink), re-judge each letter under a corrected policy
  against the *original* guard state, and fold the repaired edges into
  the predictor;
* :func:`check_casebook` — the self-test the CLI and the
  ``casebook-replay`` CI job run: per-case dispositions under all
  three modes plus both convergence proofs (normalize-everything, and
  quarantine-then-replay, each bit-identical to ingesting the clean
  corpus — serially and sharded).

Convergence leans on the predictor algebra the parallel suite already
pins: ``update(u, v)`` is commutative, associative, and timestamp-
independent, so any path that applies the same multiset of clean
updates lands on bit-identical sketch arrays.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.config import SketchConfig
from repro.errors import ConfigurationError
from repro.stream.deadletter import (
    DeadLetter,
    MemoryDeadLetters,
    PathLike,
    read_dead_letters,
)
from repro.stream.policies import (
    DEFAULT_MAX_TIMESTAMP,
    MODES,
    PolicySet,
    StreamGuard,
)
from repro.stream.sources import IteratorEdgeSource, SourceRecord

__all__ = [
    "Case",
    "CASEBOOK",
    "CASES_BY_REASON",
    "CorpusLine",
    "SyntheticCorpusGenerator",
    "ReplayReport",
    "replay_dead_letters",
    "CasebookReport",
    "check_casebook",
    "sketch_fingerprint",
]


class Case(NamedTuple):
    """One casebook entry: a named hostile-input class and its contract."""

    reason: str
    level: str            # "parse" | "stream"
    default_policy: str   # strict | quarantine | normalize
    repairable: bool      # has a sound normalize-mode repair
    repair: str           # what normalize does (or why it cannot)
    example: str          # the real-world incident class this models
    fixture: str          # a minimal hostile line (or record repr)


#: The taxonomy, in vocabulary order.  ``default_policy`` mirrors
#: :data:`~repro.stream.policies.DEFAULT_POLICIES` (pinned by tests).
CASEBOOK: Tuple[Case, ...] = (
    Case(
        "bad_arity", "parse", "quarantine", False,
        "none — a missing field cannot be invented",
        "truncated writes: a crashed exporter flushes half a row",
        "42",
    ),
    Case(
        "non_integer_vertex", "parse", "quarantine", False,
        "none — labelled data needs an explicit VertexRelabeler",
        "a labelled edge list (author names) fed to an integer pipeline",
        "alice bob",
    ),
    Case(
        "negative_vertex", "parse", "quarantine", False,
        "none — a negative id is an upstream sentinel leaking through",
        "-1 used as a null-vertex sentinel in a join",
        "-1 7",
    ),
    Case(
        "bad_timestamp", "parse", "quarantine", True,
        "substitute the stream offset (the untimestamped-row default)",
        "a date string in an epoch-seconds column",
        "3 4 yesterday",
    ),
    Case(
        "self_loop", "parse", "quarantine", True,
        "drop the edge (matches the eager readers)",
        "SNAP archives routinely carry self-loops",
        "5 5",
    ),
    Case(
        "bad_record_type", "parse", "quarantine", False,
        "none — an arbitrary object has no edge reading",
        "a JSON dict slipped into a tuple stream",
        "{'u': 1}",
    ),
    Case(
        "mixed_delimiter", "parse", "normalize", True,
        "re-split on the union delimiter class [\\s,;|]+",
        "a CSV export concatenated onto a whitespace edge list",
        "6,7",
    ),
    Case(
        "bad_encoding", "parse", "normalize", True,
        "strip control/format chars, NFKC-fold, canonicalize digits",
        "BOMs and ANSI color codes from shell pipelines; fullwidth digits",
        "﻿8 9",
    ),
    Case(
        "nonfinite_timestamp", "parse", "quarantine", True,
        "substitute the stream offset",
        "NaN propagated from a failed upstream aggregation",
        "10 11 nan",
    ),
    Case(
        "bad_op", "parse", "quarantine", False,
        "none — an unknown operation token has no sound reading",
        "an 'upsert' op from a CDC feed leaking into the add/delete grammar",
        "upd 1 2 3",
    ),
    Case(
        "duplicate_edge", "stream", "normalize", True,
        "drop the re-send (first occurrence already counted)",
        "at-least-once delivery re-sending a batch after an ack timeout",
        "0 1  (after 0 1 was accepted)",
    ),
    Case(
        "out_of_order_timestamp", "stream", "normalize", True,
        "clamp up to the stream's timestamp high-water mark",
        "a lagging partition flushing late records",
        "12 13 5  (after the high-water mark passed 1000)",
    ),
    Case(
        "far_future_timestamp", "stream", "quarantine", True,
        "clamp down to the configured horizon",
        "milliseconds written into a seconds column (x1000 unit error)",
        "14 15 4102444801",
    ),
    Case(
        "hub_anomaly", "stream", "quarantine", True,
        "drop edges past the per-vertex degree limit",
        "the ATLAS author-inflation case: one entity absorbs the graph",
        "0 16  (after vertex 0 reached the hub limit)",
    ),
    Case(
        "delete_unseen_edge", "stream", "quarantine", True,
        "drop the retraction (there is nothing to retract)",
        "a compaction job replaying tombstones for rows another shard owned",
        "- 17 18  (edge (17, 18) was never added)",
    ),
    Case(
        "unsupported_delete", "stream", "quarantine", True,
        "drop the retraction (an append-only sink cannot apply it)",
        "a retractable CDC feed pointed at an append-only consumer",
        "- 0 1  (consumer not in dynamic mode)",
    ),
)

CASES_BY_REASON: Dict[str, Case] = {case.reason: case for case in CASEBOOK}

#: Human-facing disposition labels used in manifests and tables.
DISPOSITIONS = ("applied", "dropped", "quarantined", "error")


def _disposition_of(verdict) -> str:
    """Map a :class:`GuardVerdict` onto the manifest vocabulary."""
    if verdict.disposition == "ok":
        return "applied"
    if verdict.disposition == "normalized":
        return "applied" if verdict.edge is not None else "dropped"
    if verdict.disposition == "drop":
        return "dropped"
    if verdict.disposition == "strict":
        return "error"
    return "quarantined"


class CorpusLine(NamedTuple):
    """One labeled line of a synthetic hostile corpus.

    ``case`` is ``None`` for pristine lines.  ``expected`` maps each
    policy mode to the disposition this line must land with when *its*
    case runs under that mode.  ``clean_text`` is the line's form in
    the clean reference corpus (``None`` when the clean corpus simply
    omits it — duplicates, hub bursts, unrepairable damage).
    """

    text: str
    case: Optional[str]
    expected: Dict[str, str]
    clean_text: Optional[str]


_PRISTINE = {"strict": "applied", "quarantine": "applied", "normalize": "applied"}


def _hostile(normalize_outcome: str) -> Dict[str, str]:
    return {
        "strict": "error",
        "quarantine": "quarantined",
        "normalize": normalize_outcome,
    }


class SyntheticCorpusGenerator:
    """Emit labeled hostile corpora for casebook verification.

    The corpus is one text stream: a low-degree clean backbone (plus a
    hub vertex pre-loaded to exactly ``hub_degree_limit`` neighbors, so
    every injected burst edge trips the detector), followed by
    ``per_case`` instances of each representable case.  Timestamp-
    poisoning cases come last so their normalize-mode repairs cannot
    retroactively recolor earlier lines' dispositions.

    ``bad_record_type`` is the one case a *text* corpus cannot carry
    (it is by definition a non-text record); the policy matrix covers
    it with tuple-record fixtures instead.  ``unsupported_delete`` is
    likewise corpus-excluded: it is a property of the *consumer* (an
    append-only sink), not of any line, so it is pinned by unit tests
    against an append-only guard rather than injected here.

    ``with_deletes=True`` emits the fully dynamic variant: the clean
    backbone additionally carries matched add/delete pairs (valid
    retractions are pristine lines in every mode) and the hostile tail
    gains ``delete_unseen_edge`` injections.  A deletion-bearing corpus
    must be ingested under a delete-capable guard and a
    ``dynamic_mode`` predictor — :meth:`guard` wires the former
    automatically.

    Everything is a pure function of the constructor arguments — two
    generators with equal arguments emit identical corpora, which is
    what lets CI pin the manifest.
    """

    #: Cases injected into the text corpus, in emission order.
    TEXT_CASES = (
        "mixed_delimiter",
        "bad_encoding",
        "bad_arity",
        "bad_op",
        "non_integer_vertex",
        "negative_vertex",
        "self_loop",
        "duplicate_edge",
        "hub_anomaly",
        "bad_timestamp",
        "nonfinite_timestamp",
        "out_of_order_timestamp",
        "far_future_timestamp",
    )

    #: Extra cases a deletion-bearing corpus carries.
    DELETE_CASES = ("delete_unseen_edge",)

    def __init__(
        self,
        seed: int = 0,
        *,
        vertices: int = 30,
        clean_edges: int = 40,
        per_case: int = 2,
        hub_degree_limit: int = 6,
        max_timestamp: float = DEFAULT_MAX_TIMESTAMP,
        base_timestamp: float = 1_000.0,
        with_deletes: bool = False,
    ) -> None:
        if vertices < 4:
            raise ConfigurationError(f"vertices must be >= 4, got {vertices}")
        if per_case < 1:
            raise ConfigurationError(f"per_case must be >= 1, got {per_case}")
        backbone_degree = 2 * -(-clean_edges // vertices)  # 2 * ceil
        if hub_degree_limit <= backbone_degree:
            raise ConfigurationError(
                f"hub_degree_limit {hub_degree_limit} must exceed the backbone "
                f"degree bound {backbone_degree} or clean lines would trip it"
            )
        self.seed = seed
        self.vertices = vertices
        self.clean_edges = clean_edges
        self.per_case = per_case
        self.hub_degree_limit = hub_degree_limit
        self.max_timestamp = float(max_timestamp)
        self.base_timestamp = float(base_timestamp)
        self.with_deletes = with_deletes

    # ------------------------------------------------------------------

    def text_cases(self) -> Tuple[str, ...]:
        """The cases this corpus actually injects, in emission order."""
        if self.with_deletes:
            return self.TEXT_CASES + self.DELETE_CASES
        return self.TEXT_CASES

    def generate(self) -> List[CorpusLine]:
        rng = random.Random(self.seed)
        lines: List[CorpusLine] = []
        next_ts = [self.base_timestamp]

        def ts() -> float:
            next_ts[0] += 1.0
            return next_ts[0]

        fresh = [20_000]

        def fresh_pair() -> Tuple[int, int]:
            fresh[0] += 2
            return fresh[0] - 2, fresh[0] - 1

        def pristine(u: int, v: int) -> None:
            text = f"{u} {v} {ts():g}"
            lines.append(CorpusLine(text, None, dict(_PRISTINE), text))

        # Hub priming: vertex 0 reaches exactly the degree limit on
        # clean edges, so every later burst edge is the anomaly.
        for j in range(self.hub_degree_limit):
            pristine(0, 10_000 + j)
        # Low-degree clean backbone on vertices 1..V: concentric rings
        # (stride 1, 2, ...) keep every degree at most 2*ceil(E/V),
        # safely below the hub limit.
        backbone_pairs: List[Tuple[int, int]] = []
        stride = 1
        while len(backbone_pairs) < self.clean_edges:
            for i in range(1, self.vertices + 1):
                if len(backbone_pairs) >= self.clean_edges:
                    break
                partner = i + stride
                if partner > self.vertices:
                    partner -= self.vertices
                if partner == i:
                    continue
                backbone_pairs.append((min(i, partner), max(i, partner)))
            stride += 1
        for u, v in backbone_pairs:
            pristine(u, v)

        # Matched add/delete pairs: a valid retraction is a pristine
        # line of a deletion-bearing stream (every mode applies it).
        if self.with_deletes:
            for _ in range(self.per_case):
                u, v = fresh_pair()
                add_text = f"{u} {v} {ts():g}"
                lines.append(CorpusLine(add_text, None, dict(_PRISTINE), add_text))
                del_text = f"- {u} {v} {ts():g}"
                lines.append(CorpusLine(del_text, None, dict(_PRISTINE), del_text))

        # Hostile injections, per_case each, timestamp poisoners last.
        for case in self.text_cases():
            for _ in range(self.per_case):
                lines.append(self._inject(case, rng, backbone_pairs, ts, fresh_pair))
        return lines

    def _inject(self, case, rng, backbone_pairs, ts, fresh_pair) -> CorpusLine:
        if case == "mixed_delimiter":
            u, v = fresh_pair()
            return CorpusLine(f"{u},{v}", case, _hostile("applied"), f"{u} {v}")
        if case == "bad_encoding":
            u, v = fresh_pair()
            return CorpusLine(
                f"﻿{u} {v}\x00", case, _hostile("applied"), f"{u} {v}"
            )
        if case == "bad_arity":
            u, v = fresh_pair()
            return CorpusLine(f"{u} {v} {ts():g} trailing-junk", case, _hostile("quarantined"), None)
        if case == "bad_op":
            u, v = fresh_pair()
            token = ("upd", "upsert", "merge")[rng.randrange(3)]
            return CorpusLine(
                f"{token} {u} {v} {ts():g}", case, _hostile("quarantined"), None
            )
        if case == "delete_unseen_edge":
            u, v = fresh_pair()
            return CorpusLine(
                f"- {u} {v} {ts():g}", case, _hostile("dropped"), None
            )
        if case == "non_integer_vertex":
            u, v = fresh_pair()
            return CorpusLine(f"v{u} v{v}", case, _hostile("quarantined"), None)
        if case == "negative_vertex":
            u, v = fresh_pair()
            return CorpusLine(f"-{u} {v}", case, _hostile("quarantined"), None)
        if case == "self_loop":
            u, _ = fresh_pair()
            return CorpusLine(f"{u} {u}", case, _hostile("dropped"), None)
        if case == "duplicate_edge":
            u, v = backbone_pairs[rng.randrange(len(backbone_pairs))]
            return CorpusLine(f"{u} {v} {ts():g}", case, _hostile("dropped"), None)
        if case == "hub_anomaly":
            _, n = fresh_pair()
            return CorpusLine(f"0 {n} {ts():g}", case, _hostile("dropped"), None)
        if case == "bad_timestamp":
            u, v = fresh_pair()
            return CorpusLine(f"{u} {v} not-a-time", case, _hostile("applied"), f"{u} {v}")
        if case == "nonfinite_timestamp":
            u, v = fresh_pair()
            token = ("nan", "inf", "-inf")[rng.randrange(3)]
            return CorpusLine(f"{u} {v} {token}", case, _hostile("applied"), f"{u} {v}")
        if case == "out_of_order_timestamp":
            u, v = fresh_pair()
            stale = self.base_timestamp - 50.0
            return CorpusLine(f"{u} {v} {stale:g}", case, _hostile("applied"), f"{u} {v}")
        if case == "far_future_timestamp":
            u, v = fresh_pair()
            beyond = self.max_timestamp * 2.0
            return CorpusLine(f"{u} {v} {beyond:g}", case, _hostile("applied"), f"{u} {v}")
        raise ConfigurationError(f"no injector for case {case!r}")

    # ------------------------------------------------------------------

    def hostile_lines(self) -> List[str]:
        return [line.text for line in self.generate()]

    def clean_lines(self) -> List[str]:
        """The clean reference corpus: pristine lines plus the repaired
        form of every repairable hostile line, in stream order — what
        the hostile corpus must converge to under normalize (or under
        quarantine followed by a normalize replay)."""
        return [line.clean_text for line in self.generate() if line.clean_text is not None]

    def guard(self, policies: Optional[PolicySet]) -> StreamGuard:
        """A guard configured with this corpus's thresholds (delete-
        capable iff the corpus carries deletions)."""
        return StreamGuard(
            policies,
            hub_degree_limit=self.hub_degree_limit,
            max_timestamp=self.max_timestamp,
            supports_deletes=self.with_deletes,
        )


# ----------------------------------------------------------------------
# Dead-letter replay
# ----------------------------------------------------------------------


class ReplayReport(NamedTuple):
    """What :func:`replay_dead_letters` did with a quarantine file."""

    applied: int                        # repaired and folded into the predictor
    removed: int                        # repaired by removal (dupes, hub, loops)
    still_quarantined: Dict[str, int]   # per-reason counts that stayed out

    @property
    def total(self) -> int:
        return self.applied + self.removed + sum(self.still_quarantined.values())


def replay_dead_letters(
    letters: Union[PathLike, Sequence[DeadLetter]],
    *,
    guard: StreamGuard,
    predictor,
    policies: Optional[PolicySet] = None,
) -> ReplayReport:
    """Re-ingest quarantined records under a corrected policy.

    The triage loop documented in ``docs/OPERATIONS.md``: read the
    letters (a :class:`~repro.stream.deadletter.FileDeadLetters` path
    or an in-memory entry list), re-judge each raw against ``guard`` —
    which must be the *original* run's guard, so duplicates and hub
    bursts are judged against the already-ingested state — and fold
    every repaired edge into ``predictor``.

    Because predictor updates commute, appending the repaired edges
    after the fact converges bit-identically to having ingested the
    clean corpus in one pass (pinned by the casebook suite, serially
    and sharded).  Default ``policies`` is normalize-everything.
    """
    if isinstance(letters, (str,)) or hasattr(letters, "__fspath__"):
        letters = read_dead_letters(letters)
    active = policies if policies is not None else PolicySet.uniform("normalize")
    applied = removed = 0
    still: Dict[str, int] = {}
    for letter in sorted(letters, key=lambda entry: entry.offset):
        record = SourceRecord(letter.offset, letter.raw, letter.line_number)
        verdict = guard.evaluate(record, policies=active)
        outcome = _disposition_of(verdict)
        if outcome == "applied":
            typed = verdict.record
            if typed is not None and hasattr(predictor, "apply"):
                # A dynamic predictor replays the typed operation (a
                # repaired record may be a retraction, not an add).
                predictor.apply(typed)
            else:
                predictor.update(verdict.edge.u, verdict.edge.v)
            applied += 1
        elif outcome == "dropped":
            removed += 1
        else:  # quarantined or error: the record stays out
            reason = verdict.reason or "unknown"
            still[reason] = still.get(reason, 0) + 1
    return ReplayReport(applied=applied, removed=removed, still_quarantined=still)


# ----------------------------------------------------------------------
# The casebook self-check (CLI + CI gate)
# ----------------------------------------------------------------------


def sketch_fingerprint(predictor) -> str:
    """A collision-resistant digest of the full sketch state.

    Two predictors share a fingerprint iff their exported arrays are
    bit-identical — the equality the convergence proofs assert.
    """
    arrays = predictor.export_arrays()
    digest = hashlib.sha256()
    for array in (
        arrays.vertex_ids,
        arrays.values,
        arrays.witnesses,
        arrays.update_counts,
        arrays.degrees,
    ):
        if array is None:
            digest.update(b"<none>")
        else:
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
    return digest.hexdigest()


class CaseModeRow(NamedTuple):
    """One row of the disposition table: a case under one mode."""

    case: str
    mode: str
    expected: str
    total: int
    matched: int


class CasebookReport(NamedTuple):
    """Everything ``repro-linkpred casebook`` prints and CI gates on."""

    rows: List[CaseModeRow]
    mismatches: List[str]
    normalize_converged: bool
    replay_converged: bool
    sharded_normalize_converged: Optional[bool]
    sharded_replay_converged: Optional[bool]

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and self.normalize_converged
            and self.replay_converged
            and self.sharded_normalize_converged is not False
            and self.sharded_replay_converged is not False
        )


def _run_guard_table(corpus: List[CorpusLine], generator: SyntheticCorpusGenerator):
    """Per-line dispositions of the corpus under each uniform mode."""
    table: Dict[str, List[str]] = {}
    for mode in MODES:
        guard = generator.guard(PolicySet.uniform(mode))
        dispositions = []
        for offset, line in enumerate(corpus):
            record = SourceRecord(offset, line.text, offset + 1)
            dispositions.append(_disposition_of(guard.evaluate(record)))
        table[mode] = dispositions
    return table


def check_casebook(
    *,
    seed: int = 0,
    per_case: int = 2,
    hub_degree_limit: int = 6,
    config: Optional[SketchConfig] = None,
    workers: int = 0,
    with_deletes: bool = False,
) -> CasebookReport:
    """Run the whole casebook and report dispositions + convergence.

    ``workers > 1`` additionally proves both convergence properties
    through the sharded runner (spawning real worker processes).
    ``with_deletes`` runs the deletion-bearing corpus variant instead:
    delete-capable guards, ``dynamic_mode`` predictors, and the
    ``delete_unseen_edge`` case in the matrix — the same convergence
    proofs now exercising the retraction path end to end.
    """
    from repro.stream.runner import StreamRunner

    generator = SyntheticCorpusGenerator(
        seed,
        per_case=per_case,
        hub_degree_limit=hub_degree_limit,
        with_deletes=with_deletes,
    )
    corpus = generator.generate()
    config = config or SketchConfig(k=16, seed=seed, dynamic_mode=with_deletes)
    if with_deletes and not config.dynamic_mode:
        raise ConfigurationError(
            "a deletion-bearing corpus needs dynamic_mode=True in its config"
        )

    # -- disposition matrix -------------------------------------------
    table = _run_guard_table(corpus, generator)
    rows: List[CaseModeRow] = []
    mismatches: List[str] = []
    for mode in MODES:
        per_case_counts: Dict[str, Tuple[int, int]] = {}
        for offset, line in enumerate(corpus):
            if line.case is None:
                continue
            expected = line.expected[mode]
            observed = table[mode][offset]
            total, matched = per_case_counts.get(line.case, (0, 0))
            per_case_counts[line.case] = (total + 1, matched + (observed == expected))
            if observed != expected:
                mismatches.append(
                    f"{line.case} under {mode}: line {offset} ({line.text!r}) "
                    f"landed {observed}, expected {expected}"
                )
        for case in generator.text_cases():
            total, matched = per_case_counts[case]
            expected = corpus[
                next(i for i, l in enumerate(corpus) if l.case == case)
            ].expected[mode]
            rows.append(CaseModeRow(case, mode, expected, total, matched))

    # -- convergence: normalize-everything ----------------------------
    hostile = [line.text for line in corpus]
    clean = [line.clean_text for line in corpus if line.clean_text is not None]
    reference = StreamRunner(
        IteratorEdgeSource(clean, name="clean"), config=config
    )
    reference.run()
    clean_print = sketch_fingerprint(reference.predictor)

    normalize_runner = StreamRunner(
        IteratorEdgeSource(hostile, name="hostile"),
        config=config,
        guard=generator.guard(PolicySet.uniform("normalize")),
    )
    normalize_runner.run()
    normalize_converged = sketch_fingerprint(normalize_runner.predictor) == clean_print

    # -- convergence: quarantine, then replay under normalize ---------
    sink = MemoryDeadLetters(capacity=len(hostile) + 1)
    quarantine_runner = StreamRunner(
        IteratorEdgeSource(hostile, name="hostile"),
        config=config,
        dead_letters=sink,
        guard=generator.guard(PolicySet.uniform("quarantine")),
    )
    quarantine_runner.run()
    replay_dead_letters(
        sink.entries,
        guard=quarantine_runner.guard,
        predictor=quarantine_runner.predictor,
        policies=PolicySet.uniform("normalize"),
    )
    replay_converged = sketch_fingerprint(quarantine_runner.predictor) == clean_print

    # -- the same two proofs through the sharded runner ---------------
    sharded_normalize = sharded_replay = None
    if workers > 1:
        from repro.parallel import ShardedRunner

        sharded = ShardedRunner(
            IteratorEdgeSource(hostile, name="hostile"),
            workers=workers,
            config=config,
            guard=generator.guard(PolicySet.uniform("normalize")),
        )
        sharded.run()
        sharded_normalize = sketch_fingerprint(sharded.predictor) == clean_print

        shard_sink = MemoryDeadLetters(capacity=len(hostile) + 1)
        sharded_q = ShardedRunner(
            IteratorEdgeSource(hostile, name="hostile"),
            workers=workers,
            config=config,
            dead_letters=shard_sink,
            guard=generator.guard(PolicySet.uniform("quarantine")),
        )
        sharded_q.run()
        replay_dead_letters(
            shard_sink.entries,
            guard=sharded_q.guard,
            predictor=sharded_q.predictor,
            policies=PolicySet.uniform("normalize"),
        )
        sharded_replay = sketch_fingerprint(sharded_q.predictor) == clean_print

    return CasebookReport(
        rows=rows,
        mismatches=mismatches,
        normalize_converged=normalize_converged,
        replay_converged=replay_converged,
        sharded_normalize_converged=sharded_normalize,
        sharded_replay_converged=sharded_replay,
    )
