"""Dead-letter channel: quarantine for records that violate the contract.

An unattended consumer must not abort on one malformed line, and must
not silently drop it either — both lose information.  The dead-letter
channel is the third option: the record is *routed aside* with a
machine-readable reason, per-reason counters accumulate for monitoring,
and the stream keeps flowing.

Reasons are a closed vocabulary (see :data:`REASONS`) so dashboards can
alert on specific classes: a burst of ``bad_arity`` means an upstream
format change; a trickle of ``self_loop`` is normal SNAP data.

Two sinks are provided: :class:`MemoryDeadLetters` (bounded ring for
tests and interactive use) and :class:`FileDeadLetters` (append-only
JSON-lines file an operator can triage and replay — each entry carries
the source offset, line number, reason and the verbatim raw record).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Union

__all__ = [
    "DeadLetter",
    "DeadLetterSink",
    "MemoryDeadLetters",
    "FileDeadLetters",
    "REASONS",
    "read_dead_letters",
]

#: The closed vocabulary of dead-letter reasons the runner emits.
#: Parse-level reasons come from :func:`repro.graph.io.parse_edge_line`
#: and the tuple-record contract; stream-level reasons from the
#: :class:`~repro.stream.policies.StreamGuard` casebook (only emitted
#: when a :class:`~repro.stream.policies.PolicySet` is active).  Each
#: case is documented with its default policy in ``docs/CASEBOOK.md``.
REASONS = (
    # -- parse level ---------------------------------------------------
    "bad_arity",              # not 2 or 3 fields / wrong tuple length
    "non_integer_vertex",     # vertex token is not a canonical integer
    "negative_vertex",        # vertex id < 0
    "bad_timestamp",          # third field is not numeric
    "self_loop",              # u == v and self-loops are quarantined
    "bad_record_type",        # record is neither text, tuple, nor Edge
    "mixed_delimiter",        # fields joined by , ; | instead of whitespace
    "bad_encoding",           # control/format chars or non-ASCII digits
    "nonfinite_timestamp",    # timestamp parses to nan / inf / -inf
    "bad_op",                 # leading operation token is not add/delete
    # -- stream level (casebook policies) ------------------------------
    "duplicate_edge",         # edge already accepted earlier in the stream
    "out_of_order_timestamp", # timestamp regresses behind the high-water mark
    "far_future_timestamp",   # timestamp beyond the configured horizon
    "hub_anomaly",            # vertex degree exploded past the hub limit
    "delete_unseen_edge",     # delete of an edge the stream never added
    "unsupported_delete",     # delete reaching an append-only (non-dynamic) sink
)

PathLike = Union[str, Path]


class DeadLetter(NamedTuple):
    """One quarantined record with enough context to triage it."""

    offset: int
    reason: str
    raw: str
    line_number: Optional[int] = None
    detail: str = ""


class DeadLetterSink:
    """Base sink: counts per-reason; subclasses decide where entries go."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def record(self, letter: DeadLetter) -> None:
        self.counts[letter.reason] += 1
        self._store(letter)

    def _store(self, letter: DeadLetter) -> None:
        raise NotImplementedError

    def summary(self) -> Dict[str, int]:
        """Per-reason counts, stably ordered by the reason vocabulary."""
        ordered = {reason: self.counts[reason] for reason in REASONS if self.counts[reason]}
        # Unknown reasons (future extensions) trail in insertion order.
        for reason, count in self.counts.items():
            if reason not in ordered:
                ordered[reason] = count
        return ordered


class MemoryDeadLetters(DeadLetterSink):
    """Keep the most recent ``capacity`` letters in memory.

    The counters are exact regardless of capacity; only the retained
    entries are bounded, so a pathological input cannot balloon memory.
    """

    def __init__(self, capacity: int = 1000) -> None:
        super().__init__()
        self._entries: deque = deque(maxlen=capacity)

    def _store(self, letter: DeadLetter) -> None:
        self._entries.append(letter)

    @property
    def entries(self) -> List[DeadLetter]:
        return list(self._entries)


class FileDeadLetters(DeadLetterSink):
    """Append letters to a JSON-lines file for offline triage.

    Entries are flushed per record (a crash loses at most the OS buffer)
    and the file is append-only, so re-running a consumer over the same
    stream accumulates rather than truncates — offsets disambiguate.
    """

    def __init__(self, path: PathLike) -> None:
        super().__init__()
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _store(self, letter: DeadLetter) -> None:
        json.dump(letter._asdict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "FileDeadLetters":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_dead_letters(path: PathLike) -> List[DeadLetter]:
    """Parse a :class:`FileDeadLetters` JSON-lines file back into
    :class:`DeadLetter` entries, in file (= quarantine) order.

    The triage half of the replay loop: an operator (or
    :func:`repro.stream.casebook.replay_dead_letters`) reads the
    quarantine file, inspects reasons and raws, and re-ingests under a
    corrected policy.  JSON round-trips every raw exactly — newlines
    and control characters in a hostile record are escaped on write, so
    one letter is always one file line.
    """
    letters: List[DeadLetter] = []
    with open(Path(path), "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            letters.append(
                DeadLetter(
                    offset=payload["offset"],
                    reason=payload["reason"],
                    raw=payload["raw"],
                    line_number=payload.get("line_number"),
                    detail=payload.get("detail", ""),
                )
            )
    return letters
