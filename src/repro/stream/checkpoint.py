"""Rotated, checksummed, atomically-written checkpoint generations.

:class:`CheckpointManager` owns a directory of checkpoint files named
``<basename>-<generation>.npz`` with strictly increasing generation
numbers.  Each file is a hardened :mod:`repro.core.persistence` archive
(atomic temp-file + ``os.replace`` write, embedded sha256, embedded
stream offset), so the failure story composes:

* **crash mid-write** — the temp file is torn, the previous generation
  is untouched; the stray temp is swept on the next save,
* **bit rot / truncation of a finished file** — the checksum rejects it
  with :class:`~repro.errors.CheckpointCorruptError` and
  :meth:`load_latest` falls back to the next older generation,
* **all generations corrupt** — :meth:`load_latest` raises, because
  resuming from garbage is the one unacceptable outcome.

Rotation keeps the newest ``keep`` generations.  ``keep`` trades disk
for recovery depth: with cadence *N* and ``keep=3`` a consumer can lose
its two newest checkpoints and still replay at most *3N* records.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, NamedTuple, Optional, Tuple, Union

from repro.core.persistence import load_predictor_with_metadata, save_predictor
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import CheckpointCorruptError, ConfigurationError
from repro.obs.registry import MetricsRegistry

__all__ = ["CheckpointManager", "Checkpoint"]

PathLike = Union[str, Path]


class Checkpoint(NamedTuple):
    """A successfully loaded checkpoint: state + resume position."""

    predictor: MinHashLinkPredictor
    offset: int
    generation: int
    path: Path


class CheckpointManager:
    """Manage rotated checkpoint generations in one directory.

    Parameters
    ----------
    directory:
        Created if absent.  One manager per logical consumer; two
        consumers sharing a directory would interleave generations.
    keep:
        Newest generations retained after each save (>= 1).
    basename:
        File-name stem, useful when drills and production share a
        scratch directory.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; saves
        and loads record into the ``persist_*`` instruments (bytes
        written, save/load latency) and corrupt generations skipped by
        :meth:`load_latest` count into
        ``checkpoint_corrupt_generations_total``.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        keep: int = 3,
        basename: str = "checkpoint",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", basename):
            raise ConfigurationError(f"basename must be a plain file stem, got {basename!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.basename = basename
        self.metrics = metrics
        self._m_corrupt = (
            metrics.counter(
                "checkpoint_corrupt_generations_total",
                "Corrupt checkpoint generations skipped during resume",
            )
            if metrics is not None
            else None
        )
        self._pattern = re.compile(rf"{re.escape(basename)}-(\d+)\.npz$")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(self, predictor: MinHashLinkPredictor, offset: int) -> Path:
        """Write the next generation atomically; returns its path.

        Embeds ``offset`` (records consumed from the source, including
        dead-lettered ones) so resume knows exactly where to continue.
        Old generations beyond ``keep`` and stray temp files from
        crashed writers are removed *after* the new file is durable.
        """
        generation = self.latest_generation() + 1
        path = self._path_for(generation)
        save_predictor(
            predictor,
            path,
            metadata={"stream_offset": offset, "generation": generation},
            metrics=self.metrics,
        )
        self._sweep()
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def generations(self) -> List[int]:
        """Existing generation numbers, newest first."""
        found = []
        for entry in self.directory.iterdir():
            match = self._pattern.fullmatch(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found, reverse=True)

    def latest_generation(self) -> int:
        """The newest generation number, or 0 if none exist."""
        generations = self.generations()
        return generations[0] if generations else 0

    def load_latest(self) -> Optional[Checkpoint]:
        """Load the newest *intact* checkpoint, or ``None`` if none exist.

        Corrupt generations are skipped (newest-first) — this is the
        "resume from generation N-1" path after a torn write or bit
        rot.  If every generation is corrupt, the newest generation's
        :class:`~repro.errors.CheckpointCorruptError` is re-raised:
        silently starting from scratch would replay the whole stream
        into doubled degree counts.
        """
        first_error: Optional[CheckpointCorruptError] = None
        for generation in self.generations():
            path = self._path_for(generation)
            try:
                predictor, metadata = load_predictor_with_metadata(path, metrics=self.metrics)
            except CheckpointCorruptError as error:
                if self._m_corrupt is not None:
                    self._m_corrupt.inc()
                if first_error is None:
                    first_error = error
                continue
            return Checkpoint(predictor, metadata.get("stream_offset", 0), generation, path)
        if first_error is not None:
            raise first_error
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _path_for(self, generation: int) -> Path:
        return self.directory / f"{self.basename}-{generation}.npz"

    def _sweep(self) -> None:
        for generation in self.generations()[self.keep:]:
            self._path_for(generation).unlink(missing_ok=True)
        for stray in self.directory.glob(f".{self.basename}-*.npz.tmp-*"):
            stray.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.directory)!r}, keep={self.keep}, "
            f"latest={self.latest_generation()})"
        )
