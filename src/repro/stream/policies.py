"""Per-case ingest policies and the stream-level contract guard.

The dead-letter channel gives every contract violation a *name*
(:data:`~repro.stream.deadletter.REASONS`); this module gives every
name a *policy*.  Each casebook case (see
:mod:`repro.stream.casebook` and ``docs/CASEBOOK.md``) can be handled
in one of three modes:

``strict``
    Raise :class:`~repro.errors.DeadLetterError` on first occurrence —
    the CI / data-contract posture where a hostile line means the
    upstream broke.
``quarantine``
    Dead-letter the record with its reason, count it, keep consuming —
    the default unattended-consumer posture.
``normalize``
    Repair the record when the case admits a deterministic repair
    (re-split mixed delimiters, strip control characters, substitute
    the offset for a broken timestamp, clamp regressing / far-future
    timestamps, drop the duplicate or excess hub edge) and continue;
    every applied repair is counted per-reason in the metrics registry
    (``ingest_normalized_total{reason=...}``).  Cases with no sound
    repair (``bad_arity``, ``non_integer_vertex``, ``negative_vertex``,
    ``bad_record_type``) fall back to quarantine.

Two layers cooperate:

* **parse level** — :func:`coerce_stream_record` (shared verbatim by
  the serial :class:`~repro.stream.runner.StreamRunner` and the sharded
  coordinator in :mod:`repro.parallel`) validates one raw record via
  :func:`repro.graph.io.parse_stream_record`, coercing every legacy
  shape — text line, ``(u, v[, t])`` tuple, :class:`Edge` — into a
  typed :class:`~repro.graph.stream.StreamRecord`;
* **stream level** — :class:`StreamGuard` additionally tracks
  cross-record state (seen-edge set, per-vertex degrees, the timestamp
  high-water mark) to detect ``duplicate_edge``,
  ``out_of_order_timestamp``, ``far_future_timestamp`` and
  ``hub_anomaly`` — the degree-explosion case gSketch shows distorts
  sketch estimators specifically.

A guard with ``policies=None`` reproduces the legacy contract exactly
(parse-level validation only, dead-letter on violation): stream-level
detection costs state, so it is strictly opt-in.
"""

from __future__ import annotations

import math
import re
import unicodedata
from typing import Dict, Mapping, NamedTuple, Optional, Set, Tuple

from repro.errors import ConfigurationError, StreamFormatError
from repro.graph.io import OP_TOKENS, parse_stream_record
from repro.graph.stream import OPS, Edge, StreamRecord
from repro.stream.deadletter import REASONS
from repro.stream.sources import SourceRecord

__all__ = [
    "MODES",
    "DEFAULT_POLICIES",
    "DEFAULT_HUB_DEGREE_LIMIT",
    "DEFAULT_MAX_TIMESTAMP",
    "PolicySet",
    "GuardVerdict",
    "StreamGuard",
    "ContractViolation",
    "coerce_record",
    "coerce_stream_record",
]

#: The three per-case handling modes, from least to most forgiving.
MODES = ("strict", "quarantine", "normalize")

#: Default mode per casebook case.  Repairable formatting damage is
#: normalized (the repair is deterministic and information-preserving);
#: semantic anomalies that could mask a real upstream problem are
#: quarantined so an operator sees them.  Rationale per case lives in
#: ``docs/CASEBOOK.md``.
DEFAULT_POLICIES: Dict[str, str] = {
    "bad_arity": "quarantine",
    "non_integer_vertex": "quarantine",
    "negative_vertex": "quarantine",
    "bad_timestamp": "quarantine",
    "self_loop": "quarantine",
    "bad_record_type": "quarantine",
    "mixed_delimiter": "normalize",
    "bad_encoding": "normalize",
    "nonfinite_timestamp": "quarantine",
    "bad_op": "quarantine",
    "duplicate_edge": "normalize",
    "out_of_order_timestamp": "normalize",
    "far_future_timestamp": "quarantine",
    "hub_anomaly": "quarantine",
    "delete_unseen_edge": "quarantine",
    "unsupported_delete": "quarantine",
}

#: Degree past which one vertex is a hub anomaly (the "ATLAS author
#: inflation" analog): generous for real graphs, tiny in tests.
DEFAULT_HUB_DEGREE_LIMIT = 100_000

#: 2100-01-01T00:00:00Z — epoch-second timestamps beyond this are a
#: unit error (milliseconds in a seconds column) or garbage.
DEFAULT_MAX_TIMESTAMP = 4_102_444_800.0

_ALIEN_SPLIT = re.compile(r"[\s,;|]+")


class ContractViolation(Exception):
    """A record failed validation (reason + human detail).

    Raised by :func:`coerce_record`; consumers (the serial
    :class:`~repro.stream.runner.StreamRunner` and the sharded
    coordinator in :mod:`repro.parallel`) translate it into a
    dead-letter entry or a :class:`~repro.errors.DeadLetterError` per
    their policy.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


def _coerce_vertex_pair(u: object, v: object, value: object) -> Tuple[int, int]:
    """Validate the ``u``/``v`` fields of a structured record."""
    if not isinstance(u, int) or not isinstance(v, int) or isinstance(u, bool) or isinstance(v, bool):
        raise ContractViolation("non_integer_vertex", f"non-integer vertex field in {value!r}")
    if u < 0 or v < 0:
        raise ContractViolation("negative_vertex", f"negative vertex id in {value!r}")
    return u, v


def _coerce_timestamp(raw: object, value: object, field: str = "timestamp") -> float:
    """Validate a float-valued field (``timestamp``/``weight``) of a
    structured record."""
    try:
        timestamp = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ContractViolation("bad_timestamp", f"{field}: non-numeric value {raw!r}") from None
    if not math.isfinite(timestamp):
        raise ContractViolation(
            "nonfinite_timestamp", f"{field}: non-finite value {raw!r}"
        )
    return timestamp


def coerce_stream_record(
    record: SourceRecord,
    self_loops: str = "quarantine",
    accept_ops: bool = True,
) -> Optional[StreamRecord]:
    """Validate one raw record into a typed :class:`StreamRecord`.

    The single record-contract implementation shared by the serial
    runner and the sharded coordinator — both paths must accept and
    reject *exactly* the same records or parallel ingestion could not
    be bit-identical to serial.  Accepted input shapes:

    * a text line (the full dynamic grammar of
      :func:`repro.graph.io.parse_stream_record` when ``accept_ops``,
      else the legacy append-only grammar);
    * a :class:`StreamRecord` (fields are validated, not trusted);
    * an :class:`Edge` or a ``(u, v[, t])`` tuple/list — the legacy
      shapes, coerced to ``op="add"`` records (the back-compat shim).

    ``None`` means "drop silently" (a self-loop under
    ``self_loops="drop"``); contract violations raise
    :class:`ContractViolation`.
    """
    value = record.value
    if isinstance(value, str):
        try:
            parsed = parse_stream_record(
                value,
                line_number=record.line_number,
                default_timestamp=float(record.offset),
                accept_ops=accept_ops,
            )
        except StreamFormatError as error:
            raise ContractViolation(error.reason or "bad_arity", str(error)) from None
    elif isinstance(value, StreamRecord):
        if value.op not in OPS:
            raise ContractViolation(
                "bad_op", f"op: {value.op!r} is not one of {'/'.join(OPS)}"
            )
        u, v = _coerce_vertex_pair(value.u, value.v, value)
        timestamp = _coerce_timestamp(value.timestamp, value)
        weight = _coerce_timestamp(value.weight, value, field="weight")
        parsed = StreamRecord(value.op, u, v, timestamp, weight)
    elif isinstance(value, (tuple, list)):
        if len(value) not in (2, 3):
            raise ContractViolation(
                "bad_arity",
                f"expected fields (u, v[, timestamp]), got {len(value)} fields",
            )
        u, v = _coerce_vertex_pair(value[0], value[1], value)
        if len(value) == 3:
            timestamp = _coerce_timestamp(value[2], value)
        else:
            timestamp = float(record.offset)
        parsed = StreamRecord("add", u, v, timestamp)
    else:
        raise ContractViolation(
            "bad_record_type",
            f"record is a {type(value).__name__}, not a line, tuple or StreamRecord",
        )
    if parsed.u == parsed.v:
        if self_loops == "drop":
            return None
        raise ContractViolation("self_loop", f"self-loop on vertex {parsed.u}")
    return parsed


def coerce_record(record: SourceRecord, self_loops: str = "quarantine") -> Optional[Edge]:
    """Validate one raw record into an :class:`Edge` (or ``None``).

    Back-compat wrapper over :func:`coerce_stream_record` with the
    legacy append-only contract: text lines use the op-less grammar and
    a structured ``delete`` record is a contract violation
    (``unsupported_delete``) because an :class:`Edge` cannot express
    the operation.  Callers that understand operations coerce stream
    records instead.
    """
    parsed = coerce_stream_record(record, self_loops, accept_ops=False)
    if parsed is None:
        return None
    if parsed.op != "add":
        raise ContractViolation(
            "unsupported_delete",
            f"delete of edge ({parsed.u}, {parsed.v}) reached an append-only consumer",
        )
    return parsed.edge


class PolicySet:
    """An immutable mapping: casebook case → handling mode.

    Construct with per-case overrides of :data:`DEFAULT_POLICIES`, or
    via :meth:`uniform` (one mode for every case) / :meth:`parse` (the
    CLI spelling: ``"strict"``, ``"normalize"``, or
    ``"duplicate_edge=normalize,hub_anomaly=strict"``).  Unknown cases
    and unknown modes are configuration errors — the vocabulary is
    closed on purpose.
    """

    __slots__ = ("_modes",)

    def __init__(self, overrides: Optional[Mapping[str, str]] = None) -> None:
        modes = dict(DEFAULT_POLICIES)
        for reason, mode in (overrides or {}).items():
            if reason not in modes:
                raise ConfigurationError(
                    f"unknown casebook case {reason!r} (vocabulary: "
                    f"{', '.join(REASONS)})"
                )
            if mode not in MODES:
                raise ConfigurationError(
                    f'mode for {reason!r} must be one of {"/".join(MODES)}, got {mode!r}'
                )
            modes[reason] = mode
        self._modes = modes

    @classmethod
    def uniform(cls, mode: str) -> "PolicySet":
        """Every case handled the same way — the casebook table runs."""
        if mode not in MODES:
            raise ConfigurationError(
                f'mode must be one of {"/".join(MODES)}, got {mode!r}'
            )
        return cls({reason: mode for reason in DEFAULT_POLICIES})

    @classmethod
    def parse(cls, spec: str) -> "PolicySet":
        """Parse the CLI spelling into a policy set.

        ``"default"``/empty → the defaults; a bare mode name → uniform;
        otherwise a comma list of ``case=mode`` overrides.
        """
        spec = spec.strip()
        if not spec or spec == "default":
            return cls()
        if "=" not in spec:
            return cls.uniform(spec)
        overrides: Dict[str, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            reason, sep, mode = part.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"malformed case policy {part!r} (expected case=mode)"
                )
            overrides[reason.strip()] = mode.strip()
        return cls(overrides)

    def mode_for(self, reason: str) -> str:
        """The handling mode of ``reason`` (quarantine for any slug
        outside the vocabulary — fail safe, not open)."""
        return self._modes.get(reason, "quarantine")

    def as_dict(self) -> Dict[str, str]:
        return dict(self._modes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PolicySet) and self._modes == other._modes

    def __repr__(self) -> str:
        overrides = {
            reason: mode
            for reason, mode in self._modes.items()
            if DEFAULT_POLICIES[reason] != mode
        }
        return f"PolicySet({overrides!r})" if overrides else "PolicySet()"


class GuardVerdict(NamedTuple):
    """One record's disposition under the active policies.

    ``disposition`` is one of:

    * ``"ok"`` — clean record, ``edge`` is set;
    * ``"normalized"`` — one or more repairs applied (``cases`` lists
      them); ``edge`` is set when the repair preserved the record,
      ``None`` when the repair *was* removal (duplicate, excess hub
      edge, dropped self-loop);
    * ``"drop"`` — silent drop outside any policy (legacy
      ``self_loops="drop"``);
    * ``"quarantine"`` — dead-letter with ``reason``/``detail``;
    * ``"strict"`` — the case's mode demands failing the stream.

    ``record`` is the typed operation the verdict is about (set
    whenever ``edge`` is — ``edge`` stays the legacy view consumers
    predating the record redesign read; op-aware consumers read
    ``record.op``).
    """

    disposition: str
    edge: Optional[Edge]
    reason: Optional[str]
    detail: str
    cases: Tuple[str, ...]
    record: Optional[StreamRecord] = None


class StreamGuard:
    """Stateful casebook enforcement for one logical stream.

    Wraps :func:`coerce_record` with per-case policies and the
    cross-record detectors.  One guard instance *is* the stream's
    memory: the serial runner and the sharded coordinator each own one,
    and a dead-letter replay must reuse the original guard so the
    replayed records are judged against the already-ingested state
    (otherwise a quarantined duplicate would be re-accepted).

    With ``policies=None`` the guard is pass-through: parse-level
    validation only, no state is kept, and every violation surfaces as
    a ``"quarantine"`` verdict for the runner's legacy ``policy`` knob
    to escalate — byte-for-byte the pre-casebook behavior.
    """

    def __init__(
        self,
        policies: Optional[PolicySet] = None,
        *,
        self_loops: str = "quarantine",
        hub_degree_limit: int = DEFAULT_HUB_DEGREE_LIMIT,
        max_timestamp: float = DEFAULT_MAX_TIMESTAMP,
        supports_deletes: bool = False,
    ) -> None:
        if self_loops not in ("quarantine", "drop"):
            raise ConfigurationError(
                f'self_loops must be "quarantine" or "drop", got {self_loops!r}'
            )
        if hub_degree_limit < 1:
            raise ConfigurationError(
                f"hub_degree_limit must be >= 1, got {hub_degree_limit}"
            )
        if not math.isfinite(max_timestamp):
            raise ConfigurationError("max_timestamp must be finite")
        self.policies = policies
        self.self_loops = self_loops
        self.hub_degree_limit = hub_degree_limit
        self.max_timestamp = float(max_timestamp)
        #: Whether the downstream sink can retract edges.  A ``delete``
        #: against an append-only sink is judged ``unsupported_delete``
        #: (and never mutates detector state); with a dynamic sink the
        #: guard instead checks ``delete_unseen_edge`` and, on accept,
        #: retracts the edge from its own seen/degree state.
        self.supports_deletes = supports_deletes
        self._seen: Set[Tuple[int, int]] = set()
        self._degrees: Dict[int, int] = {}
        self._high_water = float("-inf")

    @property
    def active(self) -> bool:
        """Whether stream-level cases are being enforced."""
        return self.policies is not None

    def reset(self) -> None:
        """Forget all cross-record state (a fresh logical stream)."""
        self._seen.clear()
        self._degrees.clear()
        self._high_water = float("-inf")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, record: SourceRecord, policies: Optional[PolicySet] = None
    ) -> GuardVerdict:
        """Judge one record; commits detector state iff it is accepted.

        ``policies`` overrides the guard's own set for this record —
        the dead-letter replay path re-judges quarantined records under
        a corrected policy against the *same* accumulated state.
        """
        active = policies if policies is not None else self.policies
        try:
            parsed = coerce_stream_record(record, self.self_loops)
        except ContractViolation as violation:
            if active is None:
                return GuardVerdict("quarantine", None, violation.reason, violation.detail, ())
            return self._parse_verdict(record, violation, active)
        if parsed is None:
            return GuardVerdict("drop", None, "self_loop", "", ())
        if active is None:
            if parsed.op == "delete" and not self.supports_deletes:
                return GuardVerdict(
                    "quarantine", None, "unsupported_delete",
                    f"delete of edge ({parsed.u}, {parsed.v}) reached an "
                    "append-only consumer", (),
                )
            return GuardVerdict("ok", parsed.edge, None, "", (), parsed)
        return self._stream_verdict(parsed, [], active)

    def _parse_verdict(
        self, record: SourceRecord, violation: ContractViolation, policies: PolicySet
    ) -> GuardVerdict:
        mode = policies.mode_for(violation.reason)
        if mode == "strict":
            return GuardVerdict("strict", None, violation.reason, violation.detail, ())
        if mode == "quarantine":
            return GuardVerdict("quarantine", None, violation.reason, violation.detail, ())
        try:
            repaired = self._repair(record, violation)
        except ContractViolation as secondary:
            # No sound repair, or the repair uncovered a second defect:
            # fall back to that violation's own mode (never normalize —
            # one repair attempt per record keeps this terminating).
            fallback = policies.mode_for(secondary.reason)
            disposition = "strict" if fallback == "strict" else "quarantine"
            return GuardVerdict(disposition, None, secondary.reason, secondary.detail, ())
        if repaired is None:
            # The repair was removal (a self-loop under normalize).
            return GuardVerdict(
                "normalized", None, violation.reason, violation.detail, (violation.reason,)
            )
        return self._stream_verdict(repaired, [violation.reason], policies)

    def _stream_verdict(
        self, parsed: StreamRecord, cases: list, policies: PolicySet
    ) -> GuardVerdict:
        key = (parsed.u, parsed.v) if parsed.u <= parsed.v else (parsed.v, parsed.u)
        if parsed.op == "delete":
            # Sink capability first: against an append-only sink no
            # delete can apply, whatever edge it names, and detector
            # state must stay untouched.
            if not self.supports_deletes:
                detail = (
                    f"delete of edge {key} reached an append-only consumer "
                    "(enable dynamic mode for retractable streams)"
                )
                verdict = self._judge("unsupported_delete", detail, cases, policies)
                if verdict is not None:
                    return verdict
                return GuardVerdict(
                    "normalized", None, "unsupported_delete", detail,
                    tuple(cases + ["unsupported_delete"]),
                )
            # Unseen next: like duplicate-first for adds, identity does
            # not depend on the timestamp, so a retraction of an edge
            # the stream never added is named for what it is.
            if key not in self._seen:
                detail = f"delete of edge {key} which the stream never added"
                verdict = self._judge("delete_unseen_edge", detail, cases, policies)
                if verdict is not None:
                    return verdict
                return GuardVerdict(
                    "normalized", None, "delete_unseen_edge", detail,
                    tuple(cases + ["delete_unseen_edge"]),
                )
        elif key in self._seen:
            # Duplicate first: identity does not depend on the
            # timestamp, so a verbatim re-send (whose stale timestamp
            # would also look out-of-order) is named for what it is.
            detail = f"edge {key} already accepted earlier in the stream"
            verdict = self._judge("duplicate_edge", detail, cases, policies)
            if verdict is not None:
                return verdict
            return GuardVerdict(
                "normalized", None, "duplicate_edge", detail,
                tuple(cases + ["duplicate_edge"]),
            )
        if parsed.timestamp > self.max_timestamp:
            detail = (
                f"timestamp {parsed.timestamp:g} beyond the far-future horizon "
                f"{self.max_timestamp:g}"
            )
            verdict = self._judge("far_future_timestamp", detail, cases, policies)
            if verdict is not None:
                return verdict
            parsed = parsed._replace(timestamp=self.max_timestamp)
            cases.append("far_future_timestamp")
        if self._high_water > float("-inf") and parsed.timestamp < self._high_water:
            detail = (
                f"timestamp {parsed.timestamp:g} regresses behind the stream "
                f"high-water mark {self._high_water:g}"
            )
            verdict = self._judge("out_of_order_timestamp", detail, cases, policies)
            if verdict is not None:
                return verdict
            parsed = parsed._replace(timestamp=self._high_water)
            cases.append("out_of_order_timestamp")
        if parsed.op == "delete":
            # Accepted delete: retract the edge from the detector state
            # so a later re-add is a fresh edge, not a duplicate.
            self._seen.discard(key)
            self._degrees[parsed.u] = max(0, self._degrees.get(parsed.u, 0) - 1)
            self._degrees[parsed.v] = max(0, self._degrees.get(parsed.v, 0) - 1)
            if parsed.timestamp > self._high_water:
                self._high_water = parsed.timestamp
            if cases:
                return GuardVerdict(
                    "normalized", parsed.edge, cases[0], "", tuple(cases), parsed
                )
            return GuardVerdict("ok", parsed.edge, None, "", (), parsed)
        degree_u = self._degrees.get(parsed.u, 0)
        degree_v = self._degrees.get(parsed.v, 0)
        if degree_u >= self.hub_degree_limit or degree_v >= self.hub_degree_limit:
            hub = parsed.u if degree_u >= self.hub_degree_limit else parsed.v
            detail = (
                f"vertex {hub} already has degree {max(degree_u, degree_v)} "
                f"(hub limit {self.hub_degree_limit})"
            )
            verdict = self._judge("hub_anomaly", detail, cases, policies)
            if verdict is not None:
                return verdict
            return GuardVerdict(
                "normalized", None, "hub_anomaly", detail, tuple(cases + ["hub_anomaly"])
            )
        # Accepted: commit the detector state.
        self._seen.add(key)
        self._degrees[parsed.u] = degree_u + 1
        self._degrees[parsed.v] = degree_v + 1
        if parsed.timestamp > self._high_water:
            self._high_water = parsed.timestamp
        if cases:
            return GuardVerdict(
                "normalized", parsed.edge, cases[0], "", tuple(cases), parsed
            )
        return GuardVerdict("ok", parsed.edge, None, "", (), parsed)

    def _judge(
        self, reason: str, detail: str, cases: list, policies: PolicySet
    ) -> Optional[GuardVerdict]:
        """Strict/quarantine verdict for a stream-level case, or
        ``None`` when the mode is normalize (caller applies the repair)."""
        mode = policies.mode_for(reason)
        if mode == "strict":
            return GuardVerdict("strict", None, reason, detail, tuple(cases))
        if mode == "quarantine":
            return GuardVerdict("quarantine", None, reason, detail, tuple(cases))
        return None

    # ------------------------------------------------------------------
    # Normalize-mode repairs (parse level)
    # ------------------------------------------------------------------

    def _repair(
        self, record: SourceRecord, violation: ContractViolation
    ) -> Optional[StreamRecord]:
        """The deterministic repair for one parse-level case.

        Returns the repaired record (``None`` = repaired by removal) or
        raises :class:`ContractViolation` when the case is unrepairable
        or the repaired text still violates the contract.
        """
        reason, value = violation.reason, record.value
        if reason == "self_loop":
            return None
        if reason in ("bad_timestamp", "nonfinite_timestamp"):
            # Substitute the stream offset — the same default an
            # untimestamped record gets, so ordering stays monotone.
            if isinstance(value, str):
                tokens = value.split()
                keep = 3 if tokens and tokens[0] in OP_TOKENS else 2
                return self._reparse(" ".join(tokens[:keep]), record)
            if isinstance(value, StreamRecord):
                trimmed = SourceRecord(
                    record.offset,
                    value._replace(timestamp=float(record.offset)),
                    record.line_number,
                )
            else:
                trimmed = SourceRecord(record.offset, tuple(value[:2]), record.line_number)
            return coerce_stream_record(trimmed, self.self_loops)
        if reason == "mixed_delimiter" and isinstance(value, str):
            parts = [part for part in _ALIEN_SPLIT.split(value) if part]
            return self._reparse(" ".join(parts), record)
        if reason == "bad_encoding" and isinstance(value, str):
            return self._reparse(_strip_hostile_encoding(value), record)
        raise ContractViolation(
            reason, f"no sound normalizer for {reason}: {violation.detail}"
        )

    def _reparse(self, text: str, record: SourceRecord) -> Optional[StreamRecord]:
        """Re-run the repaired text through the full parse contract."""
        try:
            parsed = parse_stream_record(
                text,
                line_number=record.line_number,
                default_timestamp=float(record.offset),
            )
        except StreamFormatError as error:
            raise ContractViolation(error.reason or "bad_arity", str(error)) from None
        if parsed.u == parsed.v:
            if self.self_loops == "drop":
                return None
            raise ContractViolation("self_loop", f"self-loop on vertex {parsed.u}")
        return parsed


def _strip_hostile_encoding(text: str) -> str:
    """Deterministic ``bad_encoding`` repair: drop control/format
    characters (keeping tab — it is a field separator), fold Unicode
    compatibility forms (NFKC turns fullwidth digits into ASCII), and
    canonicalize any remaining non-ASCII digit runs through ``int``."""
    kept = "".join(
        char
        for char in text
        if char == "\t" or unicodedata.category(char) not in ("Cc", "Cf")
    )
    kept = unicodedata.normalize("NFKC", kept)
    tokens = []
    for token in kept.split():
        if token.isdigit() and not token.isascii():
            token = str(int(token))
        tokens.append(token)
    return " ".join(tokens)
