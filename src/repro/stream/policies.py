"""Per-case ingest policies and the stream-level contract guard.

The dead-letter channel gives every contract violation a *name*
(:data:`~repro.stream.deadletter.REASONS`); this module gives every
name a *policy*.  Each casebook case (see
:mod:`repro.stream.casebook` and ``docs/CASEBOOK.md``) can be handled
in one of three modes:

``strict``
    Raise :class:`~repro.errors.DeadLetterError` on first occurrence —
    the CI / data-contract posture where a hostile line means the
    upstream broke.
``quarantine``
    Dead-letter the record with its reason, count it, keep consuming —
    the default unattended-consumer posture.
``normalize``
    Repair the record when the case admits a deterministic repair
    (re-split mixed delimiters, strip control characters, substitute
    the offset for a broken timestamp, clamp regressing / far-future
    timestamps, drop the duplicate or excess hub edge) and continue;
    every applied repair is counted per-reason in the metrics registry
    (``ingest_normalized_total{reason=...}``).  Cases with no sound
    repair (``bad_arity``, ``non_integer_vertex``, ``negative_vertex``,
    ``bad_record_type``) fall back to quarantine.

Two layers cooperate:

* **parse level** — :func:`coerce_record` (shared verbatim by the
  serial :class:`~repro.stream.runner.StreamRunner` and the sharded
  coordinator in :mod:`repro.parallel`) validates one raw record via
  :func:`repro.graph.io.parse_edge_line`;
* **stream level** — :class:`StreamGuard` additionally tracks
  cross-record state (seen-edge set, per-vertex degrees, the timestamp
  high-water mark) to detect ``duplicate_edge``,
  ``out_of_order_timestamp``, ``far_future_timestamp`` and
  ``hub_anomaly`` — the degree-explosion case gSketch shows distorts
  sketch estimators specifically.

A guard with ``policies=None`` reproduces the legacy contract exactly
(parse-level validation only, dead-letter on violation): stream-level
detection costs state, so it is strictly opt-in.
"""

from __future__ import annotations

import math
import re
import unicodedata
from typing import Dict, Mapping, NamedTuple, Optional, Set, Tuple

from repro.errors import ConfigurationError, StreamFormatError
from repro.graph.io import parse_edge_line
from repro.graph.stream import Edge
from repro.stream.deadletter import REASONS
from repro.stream.sources import SourceRecord

__all__ = [
    "MODES",
    "DEFAULT_POLICIES",
    "DEFAULT_HUB_DEGREE_LIMIT",
    "DEFAULT_MAX_TIMESTAMP",
    "PolicySet",
    "GuardVerdict",
    "StreamGuard",
    "ContractViolation",
    "coerce_record",
]

#: The three per-case handling modes, from least to most forgiving.
MODES = ("strict", "quarantine", "normalize")

#: Default mode per casebook case.  Repairable formatting damage is
#: normalized (the repair is deterministic and information-preserving);
#: semantic anomalies that could mask a real upstream problem are
#: quarantined so an operator sees them.  Rationale per case lives in
#: ``docs/CASEBOOK.md``.
DEFAULT_POLICIES: Dict[str, str] = {
    "bad_arity": "quarantine",
    "non_integer_vertex": "quarantine",
    "negative_vertex": "quarantine",
    "bad_timestamp": "quarantine",
    "self_loop": "quarantine",
    "bad_record_type": "quarantine",
    "mixed_delimiter": "normalize",
    "bad_encoding": "normalize",
    "nonfinite_timestamp": "quarantine",
    "duplicate_edge": "normalize",
    "out_of_order_timestamp": "normalize",
    "far_future_timestamp": "quarantine",
    "hub_anomaly": "quarantine",
}

#: Degree past which one vertex is a hub anomaly (the "ATLAS author
#: inflation" analog): generous for real graphs, tiny in tests.
DEFAULT_HUB_DEGREE_LIMIT = 100_000

#: 2100-01-01T00:00:00Z — epoch-second timestamps beyond this are a
#: unit error (milliseconds in a seconds column) or garbage.
DEFAULT_MAX_TIMESTAMP = 4_102_444_800.0

_ALIEN_SPLIT = re.compile(r"[\s,;|]+")


class ContractViolation(Exception):
    """A record failed validation (reason + human detail).

    Raised by :func:`coerce_record`; consumers (the serial
    :class:`~repro.stream.runner.StreamRunner` and the sharded
    coordinator in :mod:`repro.parallel`) translate it into a
    dead-letter entry or a :class:`~repro.errors.DeadLetterError` per
    their policy.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


def coerce_record(record: SourceRecord, self_loops: str = "quarantine") -> Optional[Edge]:
    """Validate one raw record into an :class:`Edge` (or ``None``).

    The single record-contract implementation shared by the serial
    runner and the sharded coordinator — both paths must accept and
    reject *exactly* the same records or parallel ingestion could not
    be bit-identical to serial.  ``None`` means "drop silently" (a
    self-loop under ``self_loops="drop"``); contract violations raise
    :class:`ContractViolation`.
    """
    value = record.value
    if isinstance(value, str):
        try:
            edge = parse_edge_line(
                value,
                line_number=record.line_number,
                default_timestamp=float(record.offset),
            )
        except StreamFormatError as error:
            raise ContractViolation(error.reason or "bad_arity", str(error)) from None
    elif isinstance(value, (tuple, list)):
        if len(value) not in (2, 3):
            raise ContractViolation("bad_arity", f"expected 2 or 3 fields, got {len(value)}")
        u, v = value[0], value[1]
        if not isinstance(u, int) or not isinstance(v, int) or isinstance(u, bool) or isinstance(v, bool):
            raise ContractViolation("non_integer_vertex", f"non-integer vertex in {value!r}")
        if u < 0 or v < 0:
            raise ContractViolation("negative_vertex", f"negative vertex id in {value!r}")
        if len(value) == 3:
            try:
                timestamp = float(value[2])
            except (TypeError, ValueError):
                raise ContractViolation("bad_timestamp", f"non-numeric timestamp {value[2]!r}") from None
            if not math.isfinite(timestamp):
                raise ContractViolation(
                    "nonfinite_timestamp", f"non-finite timestamp {value[2]!r}"
                )
        else:
            timestamp = float(record.offset)
        edge = Edge(u, v, timestamp)
    else:
        raise ContractViolation(
            "bad_record_type", f"record is a {type(value).__name__}, not a line or tuple"
        )
    if edge.u == edge.v:
        if self_loops == "drop":
            return None
        raise ContractViolation("self_loop", f"self-loop on vertex {edge.u}")
    return edge


class PolicySet:
    """An immutable mapping: casebook case → handling mode.

    Construct with per-case overrides of :data:`DEFAULT_POLICIES`, or
    via :meth:`uniform` (one mode for every case) / :meth:`parse` (the
    CLI spelling: ``"strict"``, ``"normalize"``, or
    ``"duplicate_edge=normalize,hub_anomaly=strict"``).  Unknown cases
    and unknown modes are configuration errors — the vocabulary is
    closed on purpose.
    """

    __slots__ = ("_modes",)

    def __init__(self, overrides: Optional[Mapping[str, str]] = None) -> None:
        modes = dict(DEFAULT_POLICIES)
        for reason, mode in (overrides or {}).items():
            if reason not in modes:
                raise ConfigurationError(
                    f"unknown casebook case {reason!r} (vocabulary: "
                    f"{', '.join(REASONS)})"
                )
            if mode not in MODES:
                raise ConfigurationError(
                    f'mode for {reason!r} must be one of {"/".join(MODES)}, got {mode!r}'
                )
            modes[reason] = mode
        self._modes = modes

    @classmethod
    def uniform(cls, mode: str) -> "PolicySet":
        """Every case handled the same way — the casebook table runs."""
        if mode not in MODES:
            raise ConfigurationError(
                f'mode must be one of {"/".join(MODES)}, got {mode!r}'
            )
        return cls({reason: mode for reason in DEFAULT_POLICIES})

    @classmethod
    def parse(cls, spec: str) -> "PolicySet":
        """Parse the CLI spelling into a policy set.

        ``"default"``/empty → the defaults; a bare mode name → uniform;
        otherwise a comma list of ``case=mode`` overrides.
        """
        spec = spec.strip()
        if not spec or spec == "default":
            return cls()
        if "=" not in spec:
            return cls.uniform(spec)
        overrides: Dict[str, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            reason, sep, mode = part.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"malformed case policy {part!r} (expected case=mode)"
                )
            overrides[reason.strip()] = mode.strip()
        return cls(overrides)

    def mode_for(self, reason: str) -> str:
        """The handling mode of ``reason`` (quarantine for any slug
        outside the vocabulary — fail safe, not open)."""
        return self._modes.get(reason, "quarantine")

    def as_dict(self) -> Dict[str, str]:
        return dict(self._modes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PolicySet) and self._modes == other._modes

    def __repr__(self) -> str:
        overrides = {
            reason: mode
            for reason, mode in self._modes.items()
            if DEFAULT_POLICIES[reason] != mode
        }
        return f"PolicySet({overrides!r})" if overrides else "PolicySet()"


class GuardVerdict(NamedTuple):
    """One record's disposition under the active policies.

    ``disposition`` is one of:

    * ``"ok"`` — clean record, ``edge`` is set;
    * ``"normalized"`` — one or more repairs applied (``cases`` lists
      them); ``edge`` is set when the repair preserved the record,
      ``None`` when the repair *was* removal (duplicate, excess hub
      edge, dropped self-loop);
    * ``"drop"`` — silent drop outside any policy (legacy
      ``self_loops="drop"``);
    * ``"quarantine"`` — dead-letter with ``reason``/``detail``;
    * ``"strict"`` — the case's mode demands failing the stream.
    """

    disposition: str
    edge: Optional[Edge]
    reason: Optional[str]
    detail: str
    cases: Tuple[str, ...]


class StreamGuard:
    """Stateful casebook enforcement for one logical stream.

    Wraps :func:`coerce_record` with per-case policies and the
    cross-record detectors.  One guard instance *is* the stream's
    memory: the serial runner and the sharded coordinator each own one,
    and a dead-letter replay must reuse the original guard so the
    replayed records are judged against the already-ingested state
    (otherwise a quarantined duplicate would be re-accepted).

    With ``policies=None`` the guard is pass-through: parse-level
    validation only, no state is kept, and every violation surfaces as
    a ``"quarantine"`` verdict for the runner's legacy ``policy`` knob
    to escalate — byte-for-byte the pre-casebook behavior.
    """

    def __init__(
        self,
        policies: Optional[PolicySet] = None,
        *,
        self_loops: str = "quarantine",
        hub_degree_limit: int = DEFAULT_HUB_DEGREE_LIMIT,
        max_timestamp: float = DEFAULT_MAX_TIMESTAMP,
    ) -> None:
        if self_loops not in ("quarantine", "drop"):
            raise ConfigurationError(
                f'self_loops must be "quarantine" or "drop", got {self_loops!r}'
            )
        if hub_degree_limit < 1:
            raise ConfigurationError(
                f"hub_degree_limit must be >= 1, got {hub_degree_limit}"
            )
        if not math.isfinite(max_timestamp):
            raise ConfigurationError("max_timestamp must be finite")
        self.policies = policies
        self.self_loops = self_loops
        self.hub_degree_limit = hub_degree_limit
        self.max_timestamp = float(max_timestamp)
        self._seen: Set[Tuple[int, int]] = set()
        self._degrees: Dict[int, int] = {}
        self._high_water = float("-inf")

    @property
    def active(self) -> bool:
        """Whether stream-level cases are being enforced."""
        return self.policies is not None

    def reset(self) -> None:
        """Forget all cross-record state (a fresh logical stream)."""
        self._seen.clear()
        self._degrees.clear()
        self._high_water = float("-inf")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, record: SourceRecord, policies: Optional[PolicySet] = None
    ) -> GuardVerdict:
        """Judge one record; commits detector state iff it is accepted.

        ``policies`` overrides the guard's own set for this record —
        the dead-letter replay path re-judges quarantined records under
        a corrected policy against the *same* accumulated state.
        """
        active = policies if policies is not None else self.policies
        try:
            edge = coerce_record(record, self.self_loops)
        except ContractViolation as violation:
            if active is None:
                return GuardVerdict("quarantine", None, violation.reason, violation.detail, ())
            return self._parse_verdict(record, violation, active)
        if edge is None:
            return GuardVerdict("drop", None, "self_loop", "", ())
        if active is None:
            return GuardVerdict("ok", edge, None, "", ())
        return self._stream_verdict(edge, [], active)

    def _parse_verdict(
        self, record: SourceRecord, violation: ContractViolation, policies: PolicySet
    ) -> GuardVerdict:
        mode = policies.mode_for(violation.reason)
        if mode == "strict":
            return GuardVerdict("strict", None, violation.reason, violation.detail, ())
        if mode == "quarantine":
            return GuardVerdict("quarantine", None, violation.reason, violation.detail, ())
        try:
            edge = self._repair(record, violation)
        except ContractViolation as secondary:
            # No sound repair, or the repair uncovered a second defect:
            # fall back to that violation's own mode (never normalize —
            # one repair attempt per record keeps this terminating).
            fallback = policies.mode_for(secondary.reason)
            disposition = "strict" if fallback == "strict" else "quarantine"
            return GuardVerdict(disposition, None, secondary.reason, secondary.detail, ())
        if edge is None:
            # The repair was removal (a self-loop under normalize).
            return GuardVerdict(
                "normalized", None, violation.reason, violation.detail, (violation.reason,)
            )
        return self._stream_verdict(edge, [violation.reason], policies)

    def _stream_verdict(
        self, edge: Edge, cases: list, policies: PolicySet
    ) -> GuardVerdict:
        key = (edge.u, edge.v) if edge.u <= edge.v else (edge.v, edge.u)
        # Duplicate first: identity does not depend on the timestamp, so
        # a verbatim re-send (whose stale timestamp would also look
        # out-of-order) is named for what it is.
        if key in self._seen:
            detail = f"edge {key} already accepted earlier in the stream"
            verdict = self._judge("duplicate_edge", detail, cases, policies)
            if verdict is not None:
                return verdict
            return GuardVerdict(
                "normalized", None, "duplicate_edge", detail,
                tuple(cases + ["duplicate_edge"]),
            )
        if edge.timestamp > self.max_timestamp:
            detail = (
                f"timestamp {edge.timestamp:g} beyond the far-future horizon "
                f"{self.max_timestamp:g}"
            )
            verdict = self._judge("far_future_timestamp", detail, cases, policies)
            if verdict is not None:
                return verdict
            edge = Edge(edge.u, edge.v, self.max_timestamp)
            cases.append("far_future_timestamp")
        if self._high_water > float("-inf") and edge.timestamp < self._high_water:
            detail = (
                f"timestamp {edge.timestamp:g} regresses behind the stream "
                f"high-water mark {self._high_water:g}"
            )
            verdict = self._judge("out_of_order_timestamp", detail, cases, policies)
            if verdict is not None:
                return verdict
            edge = Edge(edge.u, edge.v, self._high_water)
            cases.append("out_of_order_timestamp")
        degree_u = self._degrees.get(edge.u, 0)
        degree_v = self._degrees.get(edge.v, 0)
        if degree_u >= self.hub_degree_limit or degree_v >= self.hub_degree_limit:
            hub = edge.u if degree_u >= self.hub_degree_limit else edge.v
            detail = (
                f"vertex {hub} already has degree {max(degree_u, degree_v)} "
                f"(hub limit {self.hub_degree_limit})"
            )
            verdict = self._judge("hub_anomaly", detail, cases, policies)
            if verdict is not None:
                return verdict
            return GuardVerdict(
                "normalized", None, "hub_anomaly", detail, tuple(cases + ["hub_anomaly"])
            )
        # Accepted: commit the detector state.
        self._seen.add(key)
        self._degrees[edge.u] = degree_u + 1
        self._degrees[edge.v] = degree_v + 1
        if edge.timestamp > self._high_water:
            self._high_water = edge.timestamp
        if cases:
            return GuardVerdict("normalized", edge, cases[0], "", tuple(cases))
        return GuardVerdict("ok", edge, None, "", ())

    def _judge(
        self, reason: str, detail: str, cases: list, policies: PolicySet
    ) -> Optional[GuardVerdict]:
        """Strict/quarantine verdict for a stream-level case, or
        ``None`` when the mode is normalize (caller applies the repair)."""
        mode = policies.mode_for(reason)
        if mode == "strict":
            return GuardVerdict("strict", None, reason, detail, tuple(cases))
        if mode == "quarantine":
            return GuardVerdict("quarantine", None, reason, detail, tuple(cases))
        return None

    # ------------------------------------------------------------------
    # Normalize-mode repairs (parse level)
    # ------------------------------------------------------------------

    def _repair(
        self, record: SourceRecord, violation: ContractViolation
    ) -> Optional[Edge]:
        """The deterministic repair for one parse-level case.

        Returns the repaired edge (``None`` = repaired by removal) or
        raises :class:`ContractViolation` when the case is unrepairable
        or the repaired text still violates the contract.
        """
        reason, value = violation.reason, record.value
        if reason == "self_loop":
            return None
        if reason in ("bad_timestamp", "nonfinite_timestamp"):
            # Substitute the stream offset — the same default an
            # untimestamped record gets, so ordering stays monotone.
            if isinstance(value, str):
                return self._reparse(" ".join(value.split()[:2]), record)
            trimmed = SourceRecord(record.offset, tuple(value[:2]), record.line_number)
            return coerce_record(trimmed, self.self_loops)
        if reason == "mixed_delimiter" and isinstance(value, str):
            parts = [part for part in _ALIEN_SPLIT.split(value) if part]
            return self._reparse(" ".join(parts), record)
        if reason == "bad_encoding" and isinstance(value, str):
            return self._reparse(_strip_hostile_encoding(value), record)
        raise ContractViolation(
            reason, f"no sound normalizer for {reason}: {violation.detail}"
        )

    def _reparse(self, text: str, record: SourceRecord) -> Optional[Edge]:
        """Re-run the repaired text through the full parse contract."""
        try:
            edge = parse_edge_line(
                text,
                line_number=record.line_number,
                default_timestamp=float(record.offset),
            )
        except StreamFormatError as error:
            raise ContractViolation(error.reason or "bad_arity", str(error)) from None
        if edge.u == edge.v:
            if self.self_loops == "drop":
                return None
            raise ContractViolation("self_loop", f"self-loop on vertex {edge.u}")
        return edge


def _strip_hostile_encoding(text: str) -> str:
    """Deterministic ``bad_encoding`` repair: drop control/format
    characters (keeping tab — it is a field separator), fold Unicode
    compatibility forms (NFKC turns fullwidth digits into ASCII), and
    canonicalize any remaining non-ASCII digit runs through ``int``."""
    kept = "".join(
        char
        for char in text
        if char == "\t" or unicodedata.category(char) not in ("Cc", "Cf")
    )
    kept = unicodedata.normalize("NFKC", kept)
    tokens = []
    for token in kept.split():
        if token.isdigit() and not token.isascii():
            token = str(int(token))
        tokens.append(token)
    return " ".join(tokens)
