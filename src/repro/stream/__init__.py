"""Fault-tolerant ingestion runtime.

The paper's deployment story — an unattended consumer sketching an
unbounded edge stream in constant space — only works in production if
the consumer survives crashes, flaky sources and malformed records
without replaying the stream or corrupting state.  This package is that
runtime:

* :mod:`~repro.stream.sources` — resumable, offset-addressable record
  suppliers (:class:`FileEdgeSource`, :class:`IteratorEdgeSource`,
  :class:`SyntheticEdgeSource`) and transient-failure retry
  (:class:`RetryPolicy`, :class:`RetryingSource`),
* :mod:`~repro.stream.checkpoint` — :class:`CheckpointManager`:
  atomic, checksummed, rotated checkpoint generations embedding the
  committed stream offset,
* :mod:`~repro.stream.deadletter` — the quarantine channel with
  per-reason counters (:class:`MemoryDeadLetters`,
  :class:`FileDeadLetters`),
* :mod:`~repro.stream.policies` — the per-case policy layer
  (:class:`PolicySet`, :class:`StreamGuard`): every casebook case
  handled as ``strict`` / ``quarantine`` / ``normalize``,
* :mod:`~repro.stream.casebook` — the adversarial input casebook
  itself (:data:`CASEBOOK`, :class:`SyntheticCorpusGenerator`,
  :func:`replay_dead_letters`, :func:`check_casebook`),
* :mod:`~repro.stream.runner` — :class:`StreamRunner`, the consumer
  loop tying it together with exact crash recovery, and
* :mod:`~repro.stream.faults` — :class:`FaultInjector`, the seeded
  chaos harness the crash-recovery suite is built on.

See ``docs/OPERATIONS.md`` for the operator's view (cadence, resume
semantics, dead-letter triage, retry tuning) and ``docs/CASEBOOK.md``
for the case-by-case contract.
"""

from __future__ import annotations

from repro.stream.casebook import (
    CASEBOOK,
    Case,
    CasebookReport,
    ReplayReport,
    SyntheticCorpusGenerator,
    check_casebook,
    replay_dead_letters,
)
from repro.stream.checkpoint import Checkpoint, CheckpointManager
from repro.stream.deadletter import (
    REASONS,
    DeadLetter,
    DeadLetterSink,
    FileDeadLetters,
    MemoryDeadLetters,
    read_dead_letters,
)
from repro.stream.faults import FaultInjector, FlakySource
from repro.stream.policies import (
    DEFAULT_POLICIES,
    MODES,
    GuardVerdict,
    PolicySet,
    StreamGuard,
)
from repro.stream.runner import StreamRunner
from repro.stream.sources import (
    EdgeSource,
    FileEdgeSource,
    IteratorEdgeSource,
    RetryingSource,
    RetryPolicy,
    SourceRecord,
    SyntheticEdgeSource,
)

__all__ = [
    "CASEBOOK",
    "Case",
    "CasebookReport",
    "Checkpoint",
    "CheckpointManager",
    "DEFAULT_POLICIES",
    "DeadLetter",
    "DeadLetterSink",
    "EdgeSource",
    "FaultInjector",
    "FileDeadLetters",
    "FileEdgeSource",
    "FlakySource",
    "GuardVerdict",
    "IteratorEdgeSource",
    "MODES",
    "MemoryDeadLetters",
    "PolicySet",
    "REASONS",
    "ReplayReport",
    "RetryPolicy",
    "RetryingSource",
    "SourceRecord",
    "StreamGuard",
    "StreamRunner",
    "SyntheticCorpusGenerator",
    "SyntheticEdgeSource",
    "check_casebook",
    "read_dead_letters",
    "replay_dead_letters",
]
