"""The sharded parallel ingestion coordinator.

:class:`ShardedRunner` is the scale-out counterpart of the serial
:class:`~repro.stream.runner.StreamRunner`: it partitions one edge
stream across ``workers`` processes (hash-partitioned by edge — see
:mod:`repro.parallel.partition`), drives them through bounded
``multiprocessing`` queues with backpressure, and reduces the shard
predictors through the exact ``merge()`` algebra into a single
predictor that is **bit-identical** to serial ingestion of the same
stream.

Division of labour:

* the **coordinator** (this class, in the calling process) reads the
  source, validates records through the *same*
  :func:`~repro.stream.runner.coerce_record` contract as the serial
  runner (dead-lettering centrally, so quarantine counters live in one
  registry), assigns each valid edge to its shard, and routes chunks
  into per-shard bounded queues;
* each **worker** (:func:`~repro.parallel.worker.shard_worker_main`)
  owns a full-config predictor shard plus its own
  :class:`~repro.stream.checkpoint.CheckpointManager` subdirectory, and
  checkpoints every ``checkpoint_every`` of *its* records with the
  global offset it is committed through.

The crash-recovery contract extends PR-1's: kill any worker at any
point (the coordinator raises :class:`~repro.errors.WorkerCrashError`),
construct a new runner over the same checkpoint directory, ``resume()``
and ``run()`` — each shard replays only its own uncommitted suffix,
and the merged result is still bit-identical to an uninterrupted serial
pass.  ``run(max_records=N)`` stops all workers *without* final
checkpoints (the on-disk state of a crash), which the drill suite uses.

Observability: the registry carries
``ingest_records_total{outcome=...,shard=...}`` (per-shard routing
counters), the shared dead-letter reason counters, a
``shard_merge_seconds`` histogram for the reduce step, and worker
checkpoint totals folded in after the run.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Callable, Dict, List, Optional, Union

from repro.core.config import SketchConfig
from repro.core.dynamic import merge_dynamic_shards
from repro.core.predictor import MinHashLinkPredictor, merge_shards
from repro.errors import ConfigurationError, DeadLetterError, WorkerCrashError
from repro.graph.stream import StreamRecord
from repro.obs.registry import MetricsRegistry
from repro.parallel.partition import shard_of
from repro.parallel.worker import shard_directory, shard_worker_main
from repro.stream.deadletter import DeadLetter, DeadLetterSink, MemoryDeadLetters, REASONS
from repro.stream.policies import PolicySet, StreamGuard
from repro.stream.sources import EdgeSource, SourceRecord

__all__ = ["ShardedRunner"]

#: How long one queue operation waits before re-checking worker health.
_POLL_SECONDS = 0.1


class ShardedRunner:
    """Partition a stream across worker processes; reduce to one predictor.

    Parameters
    ----------
    source:
        Any :class:`~repro.stream.sources.EdgeSource`.  The coordinator
        is the only reader — workers never touch the source, so flaky
        sources keep their retry semantics by wrapping in
        :class:`~repro.stream.sources.RetryingSource` exactly as for
        the serial runner.
    workers:
        Shard count (>= 1).  Each worker is one OS process owning one
        predictor shard.
    config:
        The shared :class:`SketchConfig`.  Must be mergeable
        (``degree_mode="exact"``) — validated eagerly at construction,
        before any process is spawned or stream record consumed.
    checkpoint_dir / checkpoint_every / keep:
        Per-shard resumable checkpoints: shard *i* writes rotated
        generations under ``<checkpoint_dir>/shard-0i/`` every
        ``checkpoint_every`` of its own records.
    dead_letters / policy / self_loops:
        The PR-1 quarantine contract, enforced coordinator-side by the
        same validation code path as the serial runner.
    metrics:
        A :class:`MetricsRegistry` for the ``ingest_*`` instruments.
        Use a dedicated registry per runner: the sharded
        ``ingest_records_total`` carries a ``shard`` label the serial
        runner's does not.
    chunk_records / queue_depth:
        Routing granularity: edges travel in chunks of
        ``chunk_records`` through queues bounded at ``queue_depth``
        chunks, which is the backpressure window — a stalled worker
        blocks the coordinator after ``queue_depth`` undelivered
        chunks instead of buffering the stream unboundedly.
    batch_size:
        Worker-side block ingest: ``>1`` makes each worker fold its
        chunks through ``update_block`` in spans of up to this many
        edges (never crossing a checkpoint boundary), ``0``/``1``
        keeps the scalar per-record path.  Either way the merged
        result is bit-identical to serial ingestion.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``/``"spawn"``);
        default is the platform default.  Workers are spawn-safe.
    """

    def __init__(
        self,
        source: EdgeSource,
        *,
        workers: int,
        config: Optional[SketchConfig] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        keep: int = 3,
        dead_letters: Optional[DeadLetterSink] = None,
        policy: str = "quarantine",
        self_loops: str = "quarantine",
        policies: Union[PolicySet, str, None] = None,
        guard: Optional[StreamGuard] = None,
        metrics: Optional[MetricsRegistry] = None,
        chunk_records: int = 2048,
        queue_depth: int = 8,
        batch_size: int = 0,
        mp_context: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if policy not in ("quarantine", "strict"):
            raise ConfigurationError(f'policy must be "quarantine" or "strict", got {policy!r}')
        if self_loops not in ("quarantine", "drop"):
            raise ConfigurationError(f'self_loops must be "quarantine" or "drop", got {self_loops!r}')
        if checkpoint_every < 0:
            raise ConfigurationError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every and not checkpoint_dir:
            raise ConfigurationError("checkpoint_every needs a checkpoint_dir")
        if chunk_records < 1:
            raise ConfigurationError(f"chunk_records must be positive, got {chunk_records}")
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be positive, got {queue_depth}")
        if batch_size < 0:
            raise ConfigurationError(f"batch_size must be >= 0, got {batch_size}")
        self.source = source
        self.workers = workers
        self.config = config or SketchConfig()
        self.config.require_mergeable()
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.keep = keep
        self.dead_letters = dead_letters or MemoryDeadLetters()
        self.policy = policy
        self.self_loops = self_loops
        if guard is not None and policies is not None:
            raise ConfigurationError("pass policies or a pre-built guard, not both")
        if guard is not None:
            if guard.self_loops != self_loops:
                raise ConfigurationError(
                    "the guard's self_loops setting must match the runner's"
                )
            if guard.supports_deletes and not self.config.dynamic_mode:
                raise ConfigurationError(
                    "a delete-admitting guard needs a dynamic configuration; "
                    "build with SketchConfig(dynamic_mode=True)"
                )
            self.guard = guard
        else:
            if isinstance(policies, str):
                policies = PolicySet.parse(policies)
            # Guard state lives coordinator-side: one process sees every
            # record in stream order, so stream-level detection is
            # deterministic and identical to the serial runner's.
            self.guard = StreamGuard(
                policies,
                self_loops=self_loops,
                supports_deletes=self.config.dynamic_mode,
            )
        self.policies = self.guard.policies
        self.chunk_records = chunk_records
        self.queue_depth = queue_depth
        self.batch_size = batch_size
        self.mp_context = mp_context
        self.clock = clock
        #: Merged predictor; populated by :meth:`run`.
        self.predictor: Optional[MinHashLinkPredictor] = None
        #: Global offset of the last record consumed from the source + 1.
        self.offset = 0
        self.source_exhausted = False
        self._resume_requested = False
        self._ran = False
        self.shard_offsets: List[int] = [0] * workers
        self.shard_records: List[int] = [0] * workers
        self.resumed_generations: List[Optional[int]] = [None] * workers
        self.merge_seconds = 0.0
        #: Live worker process handles during run() (the kill drills
        #: reach in here to murder one mid-flight).
        self.processes: List[multiprocessing.Process] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        records = self.metrics.counter(
            "ingest_records_total",
            "Records consumed from the source, by outcome and owning shard",
            labelnames=("outcome", "shard"),
        )
        self._m_ok = [
            records.labels(outcome="ok", shard=str(shard)) for shard in range(workers)
        ]
        self._m_dead = records.labels(outcome="dead_letter", shard="-")
        self._m_dropped = records.labels(outcome="dropped", shard="-")
        self._m_replayed = records.labels(outcome="replayed", shard="-")
        self._m_strict_error = records.labels(outcome="strict_error", shard="-")
        self._m_norm_removed = records.labels(outcome="normalized", shard="-")
        self._m_dead_reasons = self.metrics.counter(
            "ingest_dead_letters_total",
            "Quarantined records by contract-violation reason",
            labelnames=("reason",),
        )
        self._m_normalized = self.metrics.counter(
            "ingest_normalized_total",
            "Normalize-mode repairs applied, by casebook case",
            labelnames=("reason",),
        )
        self._m_checkpoints = self.metrics.counter(
            "ingest_checkpoints_written_total",
            "Checkpoint generations written across all shards",
        )
        self._m_merge_seconds = self.metrics.histogram(
            "shard_merge_seconds", "Wall seconds reducing shard predictors via merge()"
        )
        self._m_run_seconds = self.metrics.counter(
            "ingest_run_seconds_total", "Wall seconds spent inside run()"
        )
        self._m_rate = self.metrics.gauge(
            "ingest_records_per_second", "Consumption rate of the most recent run() call"
        )
        self.metrics.gauge(
            "ingest_workers", "Shard worker processes of this runner"
        ).set_function(lambda: self.workers)
        self.metrics.gauge(
            "ingest_offset", "Global offset of the last consumed record + 1"
        ).set_function(lambda: self.offset)
        self.metrics.gauge(
            "ingest_vertices", "Vertices sketched by the merged predictor"
        ).set_function(lambda: self.predictor.vertex_count if self.predictor else 0)

    # -- legacy counter views (parity with StreamRunner) ----------------

    @property
    def records_ok(self) -> int:
        return int(sum(handle.value for handle in self._m_ok))

    @property
    def dead_lettered(self) -> int:
        return int(self._m_dead.value)

    @property
    def dropped(self) -> int:
        return int(self._m_dropped.value)

    @property
    def replayed(self) -> int:
        return int(self._m_replayed.value)

    @property
    def records_in(self) -> int:
        """Records consumed this runner's lifetime, every outcome included."""
        return (
            self.records_ok
            + self.dead_lettered
            + self.dropped
            + self.replayed
            + int(self._m_norm_removed.value)
            + int(self._m_strict_error.value)
        )

    @property
    def checkpoints_written(self) -> int:
        return int(self._m_checkpoints.value)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def resume(self) -> bool:
        """Arm per-shard resume; returns whether any shard checkpoint exists.

        The actual state restore happens inside each worker (it owns
        its shard directory); this call only verifies the directory and
        flags the next :meth:`run` to start workers in resume mode.
        Must be called before anything has been consumed.
        """
        if self.checkpoint_dir is None:
            raise ConfigurationError("resume() needs a checkpoint_dir")
        if self._ran or self.records_in:
            raise ConfigurationError("resume() after records were consumed would double-count")
        self._resume_requested = True
        return any(
            next(iter(shard_directory(self.checkpoint_dir, shard).glob("checkpoint-*.npz")), None)
            is not None
            for shard in range(self.workers)
        )

    # ------------------------------------------------------------------
    # The coordinator loop
    # ------------------------------------------------------------------

    def run(self, max_records: Optional[int] = None) -> Dict[str, object]:
        """Spawn workers, route the stream, reduce; returns :meth:`stats`.

        ``max_records`` bounds the records consumed by this call and
        makes every worker stop *without* a final checkpoint — the
        kill-and-resume drills' crash double.  ``None`` runs to source
        exhaustion, after which each shard writes a final checkpoint
        (if configured) and the merged predictor is exposed as
        :attr:`predictor`.
        """
        if self._ran:
            raise ConfigurationError(
                "ShardedRunner.run() is single-shot; construct a new runner "
                "(workers have exited and shard queues are closed)"
            )
        self._ran = True
        started = self.clock()
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else multiprocessing.get_context()
        )
        self._task_queues = [
            context.Queue(maxsize=self.queue_depth) for _ in range(self.workers)
        ]
        self._result_queue = context.Queue()
        self._done: Dict[int, dict] = {}
        self._ready: Dict[int, int] = {}
        self.processes = [
            context.Process(
                target=shard_worker_main,
                args=(
                    shard,
                    self._task_queues[shard],
                    self._result_queue,
                    self.config,
                    self.checkpoint_dir,
                    self.checkpoint_every,
                    self.keep,
                    self._resume_requested,
                    self.batch_size,
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            for shard in range(self.workers)
        ]
        for process in self.processes:
            process.start()
        consumed = 0
        try:
            self._collect_ready()
            start_offset = min(self.shard_offsets)
            self.offset = start_offset
            buffers: List[list] = [[] for _ in range(self.workers)]
            exhausted = True
            for record in self.source.records(start_offset):
                if max_records is not None and consumed >= max_records:
                    exhausted = False
                    break
                self._consume(record, buffers)
                consumed += 1
            for shard, buffer in enumerate(buffers):
                if buffer:
                    self._put(shard, ("edges", buffer))
            sentinel = ("finish",) if exhausted else ("halt",)
            for shard in range(self.workers):
                self._put(shard, sentinel)
            self.source_exhausted = exhausted
            self._collect_done()
        except BaseException:
            self._abort()
            raise
        finally:
            for process in self.processes:
                process.join(timeout=5.0)
        self._fold_results()
        elapsed = self.clock() - started
        self._m_run_seconds.inc(elapsed)
        if elapsed > 0:
            self._m_rate.set(consumed / elapsed)
        return self.stats()

    def _consume(self, record: SourceRecord, buffers: List[list]) -> None:
        verdict = self.guard.evaluate(record)
        disposition = verdict.disposition
        if disposition == "ok":
            self._route(record, self._accepted_record(verdict), buffers)
        elif disposition == "normalized":
            for case in verdict.cases:
                self._m_normalized.labels(case).inc()
            if verdict.edge is not None:
                self._route(record, self._accepted_record(verdict), buffers)
            else:
                self._m_norm_removed.inc()  # the repair was removal
        elif disposition == "drop":
            self._m_dropped.inc()  # silently dropped self-loop
        elif disposition == "strict" or self.policy == "strict":
            self._m_strict_error.inc()
            raise DeadLetterError(
                f"offset {record.offset}"
                + (f" (line {record.line_number})" if record.line_number else "")
                + f": {verdict.detail}",
                reason=verdict.reason,
                offset=record.offset,
            )
        else:  # quarantine
            raw = record.value if isinstance(record.value, str) else repr(record.value)
            self.dead_letters.record(
                DeadLetter(
                    offset=record.offset,
                    reason=verdict.reason,
                    raw=raw,
                    line_number=record.line_number,
                    detail=verdict.detail,
                )
            )
            self._m_dead.inc()
            self._m_dead_reasons.labels(verdict.reason).inc()
        self.offset = record.offset + 1

    @staticmethod
    def _accepted_record(verdict) -> StreamRecord:
        """The typed record behind an accepting verdict (synthesized
        from the legacy edge view for guards predating the field)."""
        if verdict.record is not None:
            return verdict.record
        edge = verdict.edge
        return StreamRecord.add_edge(edge.u, edge.v, edge.timestamp)

    def _route(
        self, record: SourceRecord, accepted: StreamRecord, buffers: List[list]
    ) -> None:
        # shard_of is symmetric in (u, v), so an edge's delete always
        # lands on the shard that saw its add — the counter algebra
        # cancels locally whenever the ops meet in one shard, and still
        # merges exactly when they don't (resume can split them).
        shard = shard_of(accepted.u, accepted.v, self.workers, self.config.seed)
        if record.offset < self.shard_offsets[shard]:
            # Already reflected in that shard's checkpoint: a
            # resume replays from min(shard offsets) and skips
            # per shard, never double-counting.
            self._m_replayed.inc()
        else:
            buffer = buffers[shard]
            buffer.append(
                (
                    record.offset,
                    accepted.u,
                    accepted.v,
                    0 if accepted.op == "add" else 1,
                    accepted.timestamp,
                )
            )
            self._m_ok[shard].inc()
            if len(buffer) >= self.chunk_records:
                self._put(shard, ("edges", buffer))
                buffers[shard] = []

    # ------------------------------------------------------------------
    # Worker liveness and message plumbing
    # ------------------------------------------------------------------

    def _put(self, shard: int, item) -> None:
        """Enqueue with backpressure, failing fast if the worker died."""
        task_queue = self._task_queues[shard]
        while True:
            try:
                task_queue.put(item, timeout=_POLL_SECONDS)
                return
            except queue_module.Full:
                self._check_alive()

    def _drain_results(self) -> None:
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            self._dispatch(message)

    def _dispatch(self, message) -> None:
        kind, shard = message[0], message[1]
        if kind == "ready":
            self._ready[shard] = message[2]
            self.shard_offsets[shard] = message[2]
            self.resumed_generations[shard] = message[3]
        elif kind == "done":
            self._done[shard] = message[2]
        elif kind == "error":
            raise WorkerCrashError(
                f"shard {shard} worker raised:\n{message[2]}",
                shard=shard,
                traceback=message[2],
            )

    def _check_alive(self) -> None:
        self._drain_results()
        for shard, process in enumerate(self.processes):
            if shard not in self._done and not process.is_alive():
                self._drain_results()  # a 'done'/'error' may have raced exit
                if shard in self._done:
                    continue
                raise WorkerCrashError(
                    f"shard {shard} worker (pid {process.pid}) died with "
                    f"exit code {process.exitcode} before finishing; resume "
                    "from the per-shard checkpoints to recover",
                    shard=shard,
                    exitcode=process.exitcode,
                )

    def _collect_ready(self) -> None:
        while len(self._ready) < self.workers:
            try:
                self._dispatch(self._result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                self._check_alive()

    def _collect_done(self) -> None:
        while len(self._done) < self.workers:
            try:
                self._dispatch(self._result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                self._check_alive()

    def _abort(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for task_queue in getattr(self, "_task_queues", []):
            task_queue.cancel_join_thread()
        self._result_queue.cancel_join_thread()

    # ------------------------------------------------------------------
    # Reduce and health
    # ------------------------------------------------------------------

    def _fold_results(self) -> None:
        for shard in range(self.workers):
            payload = self._done[shard]
            self.shard_offsets[shard] = payload["offset"]
            self.shard_records[shard] = payload["records_ok"]
            self._m_checkpoints.inc(payload["checkpoints_written"])
        merge_started = self.clock()
        reduce_shards = (
            merge_dynamic_shards if self.config.dynamic_mode else merge_shards
        )
        self.predictor = reduce_shards(
            [self._done[shard]["predictor"] for shard in range(self.workers)]
        )
        self.merge_seconds = self.clock() - merge_started
        self._m_merge_seconds.observe(self.merge_seconds)

    def shard_predictors(self) -> List[MinHashLinkPredictor]:
        """The per-shard predictors of the finished run, in shard order
        (the zero-copy input to
        :meth:`repro.serve.PackedSketches.from_shards`)."""
        if not self._done or len(self._done) < self.workers:
            raise ConfigurationError("shard predictors exist only after run()")
        return [self._done[shard]["predictor"] for shard in range(self.workers)]

    def dead_letter_reasons(self) -> Dict[str, int]:
        """Per-reason quarantine counts (stably ordered, defensive copy)."""
        by_reason = {
            labels.get("reason", ""): int(series.value)
            for labels, series in self._m_dead_reasons.series()
        }
        ordered = {reason: by_reason[reason] for reason in REASONS if by_reason.get(reason)}
        for reason, count in by_reason.items():
            if count and reason not in ordered:
                ordered[reason] = count
        return ordered

    def normalized_reasons(self) -> Dict[str, int]:
        """Per-case counts of applied normalize-mode repairs (stably
        ordered by the reason vocabulary, defensive copy)."""
        by_reason = {
            labels.get("reason", ""): int(series.value)
            for labels, series in self._m_normalized.series()
        }
        ordered = {reason: by_reason[reason] for reason in REASONS if by_reason.get(reason)}
        for reason, count in by_reason.items():
            if count and reason not in ordered:
                ordered[reason] = count
        return ordered

    def stats(self) -> Dict[str, object]:
        """Runner health as a flat dict, mirroring
        :meth:`StreamRunner.stats <repro.stream.runner.StreamRunner.stats>`
        with the sharding extras (per-shard offsets/records, merge
        latency).  A defensive snapshot — mutate freely."""
        dead_reasons = self.dead_letter_reasons()
        norm_reasons = self.normalized_reasons()
        return {
            "source": self.source.name,
            "policy": self.policy,
            "workers": self.workers,
            "offset": self.offset,
            "records_in": self.records_in,
            "records_ok": self.records_ok,
            "dead_lettered": self.dead_lettered,
            "dead_letter_reasons": dead_reasons,
            "dropped": self.dropped,
            "normalized": int(sum(norm_reasons.values())),
            "normalized_reasons": norm_reasons,
            # Guard-detected duplicate arrivals (casebook policies only;
            # parity with StreamRunner.stats).
            "duplicate_edges_detected": dead_reasons.get("duplicate_edge", 0)
            + norm_reasons.get("duplicate_edge", 0),
            "replayed": self.replayed,
            "checkpoints_written": self.checkpoints_written,
            "shard_offsets": list(self.shard_offsets),
            "shard_records": list(self.shard_records),
            "resumed_generations": list(self.resumed_generations),
            "merge_seconds": self.merge_seconds,
            "source_exhausted": self.source_exhausted,
            "vertices": self.predictor.vertex_count if self.predictor else 0,
            "dynamic": self.config.dynamic_mode,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedRunner(workers={self.workers}, k={self.config.k}, "
            f"checkpoint_dir={self.checkpoint_dir!r})"
        )
