"""The shard worker: one process, one predictor shard, one checkpoint dir.

Each worker owns a *full-configuration*
:class:`~repro.core.predictor.MinHashLinkPredictor` (same ``k``, same
seed, same hash bank as every sibling — mergeability requires equal
configs) and consumes only the edges the coordinator routes to its
shard.  The protocol over the bounded task queue:

* ``("edges", [(offset, u, v, op, timestamp), ...])`` — a chunk of
  validated records owned by this shard, global stream offsets
  ascending; ``op`` is 0 for an add, 1 for a delete (the coordinator
  guard admits deletes only under a dynamic configuration),
* ``("finish",)`` — the source is exhausted: write a final checkpoint
  (so a completed stream never replays) and report the shard state,
* ``("halt",)`` — stop *without* a final checkpoint.  This is what a
  coordinator-side ``max_records`` drill sends: the on-disk state then
  looks exactly like a crash, which the recovery suite exploits.

Results flow back on a shared queue: ``("ready", shard, offset,
generation)`` after startup/resume, ``("done", shard, payload)`` on
completion, ``("error", shard, traceback)`` on an unhandled exception.

Checkpointing reuses :class:`~repro.stream.checkpoint.CheckpointManager`
unchanged, one manager per shard in its own subdirectory
(``<root>/shard-03/checkpoint-<gen>.npz``).  A shard checkpoint embeds
the *global* stream offset of its last applied edge + 1; because the
coordinator routes each shard's records in ascending offset order,
"every record of mine below this offset is reflected" holds per shard,
and resume is exact shard-by-shard even when workers die at different
points.
"""

from __future__ import annotations

import traceback
from pathlib import Path
from typing import Optional

from repro.core.config import SketchConfig
from repro.core.dynamic import DynamicMinHashPredictor
from repro.errors import WorkerCrashError
from repro.core.predictor import MinHashLinkPredictor
from repro.stream.checkpoint import CheckpointManager

__all__ = ["shard_worker_main", "shard_directory"]


def shard_directory(root, shard: int) -> Path:
    """The checkpoint subdirectory owned by one shard."""
    return Path(root) / f"shard-{shard:02d}"


def shard_worker_main(
    shard: int,
    task_queue,
    result_queue,
    config: SketchConfig,
    checkpoint_dir: Optional[str],
    checkpoint_every: int,
    keep: int,
    resume: bool,
    batch_size: int = 0,
) -> None:
    """Entry point of one shard worker process (top-level: spawn-safe).

    ``batch_size > 1`` folds each chunk's eligible edges through the
    block-ingest kernel
    (:meth:`~repro.core.predictor.MinHashLinkPredictor.update_block`)
    in spans that never cross a checkpoint boundary — checkpoints land
    at exactly the same record offsets as scalar ingestion, so crash
    recovery stays bit-identical.
    """
    try:
        manager = None
        if checkpoint_dir:
            manager = CheckpointManager(
                shard_directory(checkpoint_dir, shard), keep=keep
            )
        dynamic = config.dynamic_mode
        predictor = (
            DynamicMinHashPredictor(config) if dynamic else MinHashLinkPredictor(config)
        )
        offset = 0  # global stream offset this shard is committed through
        generation = None
        if resume and manager is not None:
            checkpoint = manager.load_latest()
            if checkpoint is not None:
                predictor = checkpoint.predictor
                offset = checkpoint.offset
                generation = checkpoint.generation
        result_queue.put(("ready", shard, offset, generation))

        records_ok = 0
        checkpoints_written = 0
        since_checkpoint = 0
        halted = False
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "edges":
                if batch_size > 1:
                    eligible = [
                        entry for entry in message[1] if entry[0] >= offset
                    ]  # replayed records are already in a checkpoint
                    applied = 0
                    while applied < len(eligible):
                        take = min(batch_size, len(eligible) - applied)
                        if checkpoint_every:
                            take = min(take, checkpoint_every - since_checkpoint)
                        span = eligible[applied : applied + take]
                        if dynamic:
                            # The batched kernel applies one op per
                            # call: clip the span to its leading
                            # homogeneous-op run.
                            span_op = span[0][3]
                            run = 1
                            while run < len(span) and span[run][3] == span_op:
                                run += 1
                            span = span[:run]
                            take = run
                            fold = (
                                predictor.delete_block
                                if span_op
                                else predictor.update_block
                            )
                            fold(
                                [entry[1] for entry in span],
                                [entry[2] for entry in span],
                                [entry[4] for entry in span],
                            )
                        else:
                            predictor.update_block(
                                [entry[1] for entry in span],
                                [entry[2] for entry in span],
                            )
                        offset = span[-1][0] + 1
                        records_ok += take
                        since_checkpoint += take
                        applied += take
                        if checkpoint_every and since_checkpoint >= checkpoint_every:
                            manager.save(predictor, offset)
                            checkpoints_written += 1
                            since_checkpoint = 0
                    continue
                for record_offset, u, v, op, timestamp in message[1]:
                    if record_offset < offset:
                        continue  # replayed record already in a checkpoint
                    if dynamic:
                        if op:
                            predictor.delete(u, v, timestamp)
                        else:
                            predictor.update(u, v, timestamp)
                    else:
                        predictor.update(u, v)
                    offset = record_offset + 1
                    records_ok += 1
                    since_checkpoint += 1
                    if checkpoint_every and since_checkpoint >= checkpoint_every:
                        manager.save(predictor, offset)
                        checkpoints_written += 1
                        since_checkpoint = 0
            elif kind == "finish":
                if manager is not None and since_checkpoint:
                    manager.save(predictor, offset)
                    checkpoints_written += 1
                break
            elif kind == "halt":
                halted = True
                break
            else:  # pragma: no cover - protocol misuse is a coordinator bug
                raise WorkerCrashError(
                    f"unknown worker message {message!r}", shard=shard
                )

        result_queue.put(
            (
                "done",
                shard,
                {
                    "predictor": predictor,
                    "offset": offset,
                    "records_ok": records_ok,
                    "checkpoints_written": checkpoints_written,
                    "resumed_from_generation": generation,
                    "halted": halted,
                },
            )
        )
    except Exception:  # noqa: BLE001 - forwarded verbatim to the coordinator
        result_queue.put(("error", shard, traceback.format_exc()))
