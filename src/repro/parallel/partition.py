"""Deterministic edge→shard partitioning.

The whole parallel-ingest correctness story rests on one property: the
edge stream is *partitioned* — every undirected edge is processed by
exactly one worker.  Per-vertex k-mins sketches merge exactly over
neighborhood unions and exact degree counters add, so a partitioned
stream reduces to a predictor bit-identical to a serial pass
(:meth:`repro.core.predictor.MinHashLinkPredictor.merge`).

:func:`shard_of` implements the partition as a seeded splitmix64 hash
of the *canonical* (sorted) endpoint pair:

* canonicalising makes ``(u, v)`` and ``(v, u)`` land on the same shard
  (they are the same undirected edge),
* hashing — rather than, say, ``u % shards`` — spreads hub vertices'
  edges across all workers, so a power-law stream cannot starve all
  but one shard,
* seeding from Python-level splitmix64 (not :func:`hash`) makes the
  assignment stable across processes and interpreter restarts, which
  per-shard crash recovery requires: a record replayed after resume
  must route to the *same* shard that checkpointed it.

Duplicate arrivals of one edge also land on one shard, so the
degree-counting semantics of duplicates (they increment) match serial
ingestion exactly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hashing.mixers import MASK64, splitmix64

__all__ = ["shard_of", "shard_counts"]

#: Odd 64-bit constants decorrelating the two endpoints and the seed.
_SEED_SALT = 0x9E3779B97F4A7C15
_ENDPOINT_SALT = 0xBF58476D1CE4E5B9


def shard_of(u: int, v: int, shards: int, seed: int = 0) -> int:
    """The shard owning the undirected edge ``{u, v}``.

    Deterministic in ``(min(u,v), max(u,v), shards, seed)`` only —
    never in process state.  ``shards`` must be positive; a single
    shard trivially owns everything.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    if shards == 1:
        return 0
    lo, hi = (u, v) if u <= v else (v, u)
    mixed = splitmix64((seed * _SEED_SALT) & MASK64 ^ lo)
    mixed = splitmix64(mixed ^ ((hi * _ENDPOINT_SALT) & MASK64))
    return mixed % shards


def shard_counts(edges, shards: int, seed: int = 0) -> list:
    """Edges routed to each shard (diagnostics / balance tests)."""
    counts = [0] * shards
    for u, v in edges:
        counts[shard_of(u, v, shards, seed)] += 1
    return counts
