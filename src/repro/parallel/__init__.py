"""Sharded parallel ingestion: partition the stream, merge the sketches.

The pipeline partitions one edge stream across worker processes by
hashing each undirected edge to a shard (:func:`shard_of`), lets every
worker build a full-configuration predictor over its partition with its
own crash-resumable checkpoints, and reduces the shards through the
exact ``merge()`` algebra back into a single predictor that is
bit-identical to serial ingestion.  :class:`ShardedRunner` is the
public entry point; most callers reach it through
``repro.api.ingest(..., workers=N)`` or ``repro ingest --workers N``.
"""

from repro.parallel.partition import shard_counts, shard_of
from repro.parallel.runner import ShardedRunner
from repro.parallel.worker import shard_directory, shard_worker_main

__all__ = [
    "ShardedRunner",
    "shard_counts",
    "shard_directory",
    "shard_of",
    "shard_worker_main",
]
