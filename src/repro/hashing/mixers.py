"""64-bit integer mixing primitives.

Everything in :mod:`repro.sketches` reduces to hashing a vertex identifier
(a 64-bit integer) to a pseudo-random 64-bit word, or to a float in
``[0, 1)``.  This module provides the low-level finalizers those hash
families are built from:

* :func:`splitmix64` — the SplitMix64 output function (Steele, Lea &
  Flood, OOPSLA 2014).  Passes BigCrush as a stream generator and, used
  as a finalizer, has full avalanche: flipping any input bit flips each
  output bit with probability ~1/2.
* :func:`fmix64` — the MurmurHash3 finalizer (Appleby), an alternative
  avalanche mixer used by the tabulation tests as an independent check.
* :func:`to_unit` / :func:`to_unit_open` — map a 64-bit word to a float
  in ``[0, 1)`` / ``(0, 1)``.  The *open* variant never returns 0.0,
  which matters when the value feeds a logarithm (exponential ranks).

All functions come in scalar form (pure Python, arbitrary inputs masked
to 64 bits) and, where the hot paths need them, vectorized numpy form in
:mod:`repro.hashing.families`.

Scalar functions mask with ``MASK64`` after every multiplication so the
arithmetic matches the fixed-width C reference implementations exactly;
the test-suite pins known-answer vectors for both mixers.
"""

from __future__ import annotations

__all__ = [
    "MASK64",
    "GOLDEN_GAMMA",
    "splitmix64",
    "fmix64",
    "to_unit",
    "to_unit_open",
]

#: All-ones mask for emulating 64-bit wraparound arithmetic in Python.
MASK64 = 0xFFFFFFFFFFFFFFFF

#: The SplitMix64 stream increment: ``2**64 / phi`` rounded to odd.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

# Power-of-two scale factors are exact in binary floating point, so the
# unit-interval conversions below are deterministic across platforms.
# Both mappings keep only the top bits of the word: naively computing
# ``word * 2**-64`` rounds ``2**64 - 1`` up to exactly 1.0, violating the
# half-open interval — the constructions below cannot produce 1.0.
_INV_2_53 = 2.0**-53
_INV_2_52 = 2.0**-52


def splitmix64(x: int) -> int:
    """Return the SplitMix64 finalizer of ``x`` as an unsigned 64-bit int.

    ``x`` may be any Python integer (negative values are first reduced
    modulo ``2**64``).  The function is a bijection on 64-bit words, so
    distinct vertex ids never collide at this stage; collisions can only
    be introduced by later range reduction.

    >>> splitmix64(0)
    16294208416658607535
    """
    x &= MASK64
    x = (x + GOLDEN_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def fmix64(x: int) -> int:
    """Return the MurmurHash3 64-bit finalizer of ``x``.

    An independent avalanche mixer with different constants from
    :func:`splitmix64`; used where two *unrelated* mixing stages are
    required (tabulation table filling) and by tests as a cross-check.

    >>> fmix64(1)
    12994781566227106604
    """
    x &= MASK64
    x = ((x ^ (x >> 33)) * 0xFF51AFD7ED558CCD) & MASK64
    x = ((x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53) & MASK64
    return x ^ (x >> 33)


def to_unit(word: int) -> float:
    """Map a 64-bit word to a float in ``[0, 1)``.

    Keeps the top 53 bits: ``(word >> 11) * 2**-53``.  Every value is
    exactly representable and the maximum is ``1 - 2**-53 < 1``.
    """
    return ((word & MASK64) >> 11) * _INV_2_53


def to_unit_open(word: int) -> float:
    """Map a 64-bit word to a float in the *open* interval ``(0, 1)``.

    Keeps the top 52 bits and centres each bucket:
    ``(word >> 12) * 2**-52 + 2**-53``.  All arithmetic is exact in
    binary floating point, so the range is exactly
    ``[2**-53, 1 - 2**-53]`` — never 0.0 and never 1.0, safe on both
    sides of a logarithm.  Used by exponential-rank weighted sampling.
    """
    return ((word & MASK64) >> 12) * _INV_2_52 + _INV_2_53
