"""Seeded hash functions and hash families.

The sketches in :mod:`repro.sketches` are analysed assuming access to
independent uniform hash functions ``h_i : keys -> [0, 1)``.  This module
supplies concrete, reproducible instances:

* :class:`SplitMixHash` — a seeded avalanche hash built on
  :func:`repro.hashing.mixers.splitmix64`.  Not formally universal, but
  empirically indistinguishable from uniform and by far the fastest;
  this is the default family everywhere.
* :class:`MultiplyShiftHash` — Dietzfelbinger's multiply–shift scheme,
  2-universal for ``bits``-bit outputs.  Provided for users who want a
  provable universality guarantee at the cost of weaker bit diffusion.
* :class:`PolynomialHash` — degree-``d`` polynomial modulo the Mersenne
  prime ``2**61 - 1``; ``(d+1)``-wise independent.  The Hoeffding-style
  bounds quoted in :mod:`repro.core.estimators` only need bounded
  independence, and this family realises it exactly.
* :class:`HashBank` — the hot-path object: ``k`` SplitMix functions
  evaluated *simultaneously* with one vectorized numpy expression per
  key.  MinHash sketch updates call this once per stream edge endpoint.

Every object here is immutable after construction and fully determined
by its seed, so two processes constructing sketches from equal seeds
produce bit-identical state (a property the merge operations rely on,
and that the test-suite pins).

**Negative-key contract.**  Every hash path — scalar ``__call__``,
vectorized ``batch``, and the :class:`HashBank` block evaluators —
first reduces the key modulo ``2**64`` (two's-complement masking), so
``h(-1) == h(2**64 - 1)`` for every family and the scalar and batch
paths agree bit-for-bit on any int64-representable input.  Sketches
additionally *reject* negative keys at their own boundary (witness
storage reserves negative values), but the hash layer itself is total
and consistent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.mixers import GOLDEN_GAMMA, MASK64, splitmix64, to_unit, to_unit_open

__all__ = [
    "HashFunction",
    "SplitMixHash",
    "MultiplyShiftHash",
    "PolynomialHash",
    "HashFamily",
    "SplitMixFamily",
    "MultiplyShiftFamily",
    "PolynomialFamily",
    "HashBank",
    "seed_sequence",
]

_MERSENNE_61 = (1 << 61) - 1

_U64 = np.uint64
_SHIFT_30 = _U64(30)
_SHIFT_27 = _U64(27)
_SHIFT_31 = _U64(31)
_SHIFT_11 = _U64(11)
_SHIFT_12 = _U64(12)
_MUL_1 = _U64(0xBF58476D1CE4E5B9)
_MUL_2 = _U64(0x94D049BB133111EB)
_GAMMA = _U64(GOLDEN_GAMMA)
_INV_2_53 = 2.0**-53
_INV_2_52 = 2.0**-52


def seed_sequence(seed: int, count: int) -> list[int]:
    """Return ``count`` pseudo-random 64-bit words derived from ``seed``.

    Implements the SplitMix64 *stream*: word ``i`` is
    ``splitmix64(seed + i * GOLDEN_GAMMA)``.  Consecutive words are
    statistically independent (this is exactly how SplitMix64 seeds the
    xoshiro generators), and the mapping is deterministic, so a seed
    fully determines every derived hash function in the library.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    base = seed & MASK64
    return [splitmix64(base + i * GOLDEN_GAMMA) for i in range(count)]


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array (wrapping)."""
    x = x + _GAMMA
    x = (x ^ (x >> _SHIFT_30)) * _MUL_1
    x = (x ^ (x >> _SHIFT_27)) * _MUL_2
    return x ^ (x >> _SHIFT_31)


class HashFunction(ABC):
    """A deterministic map from integer keys to 64-bit words.

    Subclasses must implement :meth:`__call__`; the unit-interval views
    and the vectorized batch path are derived from it (and overridden
    where a faster native path exists).
    """

    @abstractmethod
    def __call__(self, key: int) -> int:
        """Hash ``key`` to an unsigned 64-bit integer."""

    def unit(self, key: int) -> float:
        """Hash ``key`` to a float in ``[0, 1)``."""
        return to_unit(self(key))

    def unit_open(self, key: int) -> float:
        """Hash ``key`` to a float in the open interval ``(0, 1)``.

        Safe to feed to a logarithm; used by exponential-rank sampling.
        """
        return to_unit_open(self(key))

    def batch(self, keys: np.ndarray) -> np.ndarray:
        """Hash an integer array of keys elementwise (generic fallback).

        Keys are first cast to uint64 (wrapping), so negative inputs
        reduce modulo ``2**64`` exactly as the scalar paths do — the
        fallback and every native ``batch`` override agree bit-for-bit.
        """
        keys = np.asarray(keys).astype(np.uint64, casting="unsafe", copy=False)
        return np.array([self(int(k)) for k in keys], dtype=np.uint64)


class SplitMixHash(HashFunction):
    """A single seeded SplitMix64 hash: ``h(x) = mix(mix(seed) ^ x)``.

    The outer mix of the seed decorrelates functions whose seeds differ
    in few bits (e.g. consecutive integers), so ``SplitMixHash(0)`` and
    ``SplitMixHash(1)`` behave as unrelated functions.
    """

    __slots__ = ("seed", "_mixed_seed", "_mixed_seed_u64")

    def __init__(self, seed: int) -> None:
        self.seed = seed & MASK64
        self._mixed_seed = splitmix64(self.seed)
        self._mixed_seed_u64 = _U64(self._mixed_seed)

    def __call__(self, key: int) -> int:
        return splitmix64(self._mixed_seed ^ (key & MASK64))

    def batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        return _splitmix64_array(keys ^ self._mixed_seed_u64)

    def __repr__(self) -> str:
        return f"SplitMixHash(seed={self.seed:#x})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SplitMixHash) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("SplitMixHash", self.seed))


class MultiplyShiftHash(HashFunction):
    """Dietzfelbinger multiply–shift: ``h(x) = ((a*x + b) mod 2^64) >> (64-bits)``.

    With ``a`` odd and ``(a, b)`` uniform, the family is 2-universal on
    ``bits``-bit outputs.  The output is left-aligned back into 64 bits
    so all :class:`HashFunction` consumers see the same value range.
    """

    __slots__ = ("a", "b", "bits")

    def __init__(self, a: int, b: int, bits: int = 64) -> None:
        if not 1 <= bits <= 64:
            raise ConfigurationError(f"bits must be in [1, 64], got {bits}")
        self.a = (a | 1) & MASK64  # force odd: required for universality
        self.b = b & MASK64
        self.bits = bits

    def __call__(self, key: int) -> int:
        h = ((self.a * (key & MASK64)) + self.b) & MASK64
        h >>= 64 - self.bits
        return (h << (64 - self.bits)) & MASK64

    def __repr__(self) -> str:
        return f"MultiplyShiftHash(a={self.a:#x}, b={self.b:#x}, bits={self.bits})"


class PolynomialHash(HashFunction):
    """Degree-``d`` polynomial over ``GF(2^61 - 1)``: ``(d+1)``-wise independent.

    ``h(x) = (c_d x^d + ... + c_1 x + c_0) mod p`` with ``p = 2^61-1``.
    Keys are first reduced mod ``p``; the output (< ``p``) is scaled into
    the 64-bit range so the unit-interval mapping stays uniform.
    """

    __slots__ = ("coefficients",)

    def __init__(self, coefficients: list[int]) -> None:
        if not coefficients:
            raise ConfigurationError("need at least one coefficient")
        self.coefficients = tuple(c % _MERSENNE_61 for c in coefficients)
        if len(self.coefficients) > 1 and self.coefficients[-1] == 0:
            raise ConfigurationError("leading coefficient must be non-zero mod p")

    @property
    def independence(self) -> int:
        """The k-wise independence level this function contributes to."""
        return len(self.coefficients)

    def __call__(self, key: int) -> int:
        # Mask first (the library-wide negative-key contract): a negative
        # key must hash like its two's-complement uint64 image, not like
        # Python's ``key % p`` of the signed value.
        x = (key & MASK64) % _MERSENNE_61
        acc = 0
        for c in reversed(self.coefficients):  # Horner's rule
            acc = (acc * x + c) % _MERSENNE_61
        # Scale [0, p) up to 64 bits: multiply by floor(2^64 / p) = 8.
        return (acc * ((1 << 64) // _MERSENNE_61)) & MASK64

    def __repr__(self) -> str:
        return f"PolynomialHash(degree={len(self.coefficients) - 1})"


class HashFamily(ABC):
    """A seeded, indexable collection of hash functions.

    ``family.function(i)`` must return the same function for the same
    ``(seed, i)`` forever; sketches store only ``(family name, seed)``
    and regenerate functions on demand.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed & MASK64

    @abstractmethod
    def function(self, index: int) -> HashFunction:
        """Return the ``index``-th member of the family."""

    def functions(self, count: int) -> list[HashFunction]:
        """Return the first ``count`` members of the family."""
        return [self.function(i) for i in range(count)]


class SplitMixFamily(HashFamily):
    """Family of :class:`SplitMixHash` functions with derived seeds."""

    def function(self, index: int) -> SplitMixHash:
        if index < 0:
            raise ConfigurationError(f"index must be non-negative, got {index}")
        derived = splitmix64((self.seed + (index + 1) * GOLDEN_GAMMA) & MASK64)
        return SplitMixHash(derived)


class MultiplyShiftFamily(HashFamily):
    """Family of :class:`MultiplyShiftHash` functions with derived (a, b)."""

    def __init__(self, seed: int, bits: int = 64) -> None:
        super().__init__(seed)
        self.bits = bits

    def function(self, index: int) -> MultiplyShiftHash:
        if index < 0:
            raise ConfigurationError(f"index must be non-negative, got {index}")
        a, b = seed_sequence((self.seed ^ splitmix64(index)) & MASK64, 2)
        return MultiplyShiftHash(a, b, bits=self.bits)


class PolynomialFamily(HashFamily):
    """Family of :class:`PolynomialHash` functions of fixed independence."""

    def __init__(self, seed: int, independence: int = 4) -> None:
        super().__init__(seed)
        if independence < 1:
            raise ConfigurationError(
                f"independence must be at least 1, got {independence}"
            )
        self.independence = independence

    def function(self, index: int) -> PolynomialHash:
        if index < 0:
            raise ConfigurationError(f"index must be non-negative, got {index}")
        words = seed_sequence(
            (self.seed ^ splitmix64(index ^ 0xA5A5A5A5)) & MASK64, self.independence
        )
        coefficients = [w % _MERSENNE_61 for w in words]
        if coefficients[-1] == 0:  # vanishingly unlikely; keep degree exact
            coefficients[-1] = 1
        return PolynomialHash(coefficients)


class HashBank(object):
    """``k`` SplitMix hash functions evaluated together, vectorized.

    This is the object on the per-edge hot path: a MinHash update needs
    ``h_1(v), ..., h_k(v)`` for one key ``v``, and :meth:`values`
    computes all of them with a handful of numpy array operations
    instead of ``k`` Python-level calls.

    Function ``i`` of the bank equals ``SplitMixFamily(seed).function(i)``
    exactly — the scalar and vector paths are interchangeable, and the
    test-suite verifies the equivalence bit-for-bit.
    """

    __slots__ = ("seed", "size", "_mixed_seeds", "_pair_keys")

    def __init__(self, seed: int, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"bank size must be at least 1, got {size}")
        self.seed = seed & MASK64
        self.size = size
        family = SplitMixFamily(seed)
        mixed = [family.function(i)._mixed_seed for i in range(size)]
        self._mixed_seeds = np.array(mixed, dtype=np.uint64)
        # Reused scratch for values_pair: allocating a fresh (2, 1) array
        # per stream edge measurably drags the scalar ingest hot path.
        self._pair_keys = np.empty((2, 1), dtype=np.uint64)

    def values(self, key: int) -> np.ndarray:
        """Return ``[h_0(key), ..., h_{k-1}(key)]`` as a uint64 array."""
        return _splitmix64_array(self._mixed_seeds ^ _U64(key & MASK64))

    def values_pair(self, key_a: int, key_b: int) -> tuple:
        """Hash two keys through all ``k`` functions in one array pass.

        The per-edge hot path hashes both endpoints; fusing them into a
        single ``(2, k)`` numpy evaluation halves the fixed call
        overhead versus two :meth:`values` calls.  Returns
        ``(values_a, values_b)``, each identical to the corresponding
        :meth:`values` result.
        """
        keys = self._pair_keys
        keys[0, 0] = key_a & MASK64
        keys[1, 0] = key_b & MASK64
        both = _splitmix64_array(self._mixed_seeds ^ keys)
        return both[0], both[1]

    def values_block(self, keys) -> np.ndarray:
        """Hash a whole key batch through all ``k`` functions at once.

        Returns an ``(m, k)`` uint64 matrix whose row ``i`` equals
        :meth:`values` of ``keys[i]`` bit-for-bit — one
        :func:`_splitmix64_array` pass over the entire batch instead of
        ``m`` per-key evaluations.  This is the block-ingest kernel's
        hashing primitive (:mod:`repro.core.block`).  Negative keys
        reduce modulo ``2**64`` per the module contract.
        """
        keys = np.asarray(keys).astype(np.uint64, copy=False)
        if keys.ndim != 1:
            raise ConfigurationError(
                f"values_block expects a 1-d key array, got shape {keys.shape}"
            )
        return _splitmix64_array(keys[:, np.newaxis] ^ self._mixed_seeds)

    def units(self, key: int) -> np.ndarray:
        """Return the ``k`` hashes mapped into ``[0, 1)`` as float64.

        Matches :func:`repro.hashing.mixers.to_unit` bit-for-bit.
        """
        top53 = (self.values(key) >> _SHIFT_11).astype(np.float64)
        return top53 * _INV_2_53

    def units_open(self, key: int) -> np.ndarray:
        """Return the ``k`` hashes mapped into the open ``(0, 1)``.

        Matches :func:`repro.hashing.mixers.to_unit_open` bit-for-bit,
        so logarithms of the result are always finite.
        """
        top52 = (self.values(key) >> _SHIFT_12).astype(np.float64)
        return top52 * _INV_2_52 + _INV_2_53

    def __repr__(self) -> str:
        return f"HashBank(seed={self.seed:#x}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashBank)
            and other.seed == self.seed
            and other.size == self.size
        )

    def __hash__(self) -> int:
        return hash(("HashBank", self.seed, self.size))
