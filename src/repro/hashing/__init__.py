"""Hashing substrate: mixers, universal families, tabulation, hash banks.

See :mod:`repro.hashing.mixers` for the low-level 64-bit finalizers,
:mod:`repro.hashing.families` for seeded families and the vectorized
:class:`~repro.hashing.families.HashBank`, and
:mod:`repro.hashing.tabulation` for simple tabulation hashing.
"""

from repro.hashing.families import (
    HashBank,
    HashFamily,
    HashFunction,
    MultiplyShiftFamily,
    MultiplyShiftHash,
    PolynomialFamily,
    PolynomialHash,
    SplitMixFamily,
    SplitMixHash,
    seed_sequence,
)
from repro.hashing.mixers import (
    GOLDEN_GAMMA,
    MASK64,
    fmix64,
    splitmix64,
    to_unit,
    to_unit_open,
)
from repro.hashing.tabulation import TabulationFamily, TabulationHash

__all__ = [
    "GOLDEN_GAMMA",
    "MASK64",
    "fmix64",
    "splitmix64",
    "to_unit",
    "to_unit_open",
    "HashBank",
    "HashFamily",
    "HashFunction",
    "MultiplyShiftFamily",
    "MultiplyShiftHash",
    "PolynomialFamily",
    "PolynomialHash",
    "SplitMixFamily",
    "SplitMixHash",
    "TabulationFamily",
    "TabulationHash",
    "seed_sequence",
]

#: Registry used by :class:`repro.core.config.SketchConfig` to resolve a
#: family by name.
FAMILIES = {
    "splitmix": SplitMixFamily,
    "multiply_shift": MultiplyShiftFamily,
    "polynomial": PolynomialFamily,
    "tabulation": TabulationFamily,
}


def family_by_name(name: str, seed: int) -> HashFamily:
    """Instantiate a hash family from its registry name.

    Raises :class:`repro.errors.ConfigurationError` for unknown names so
    a typo in a config file fails at construction, not mid-stream.
    """
    from repro.errors import ConfigurationError

    try:
        factory = FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ConfigurationError(
            f"unknown hash family {name!r}; known families: {known}"
        ) from None
    return factory(seed)
