"""Simple tabulation hashing.

Tabulation hashing (Zobrist 1970; analysed by Pătrașcu & Thorup, JACM
2012) splits a 64-bit key into 8 bytes and XORs together 8 lookup tables
of 256 random words each:

    h(x) = T_0[x & 0xFF] ^ T_1[(x >> 8) & 0xFF] ^ ... ^ T_7[x >> 56]

The family is only 3-independent, yet Pătrașcu–Thorup show it delivers
Chernoff-style concentration for MinHash-type applications — which is
exactly the theoretical footing the sketch estimators in
:mod:`repro.core` want.  It is the "theoretically safe" alternative to
:class:`repro.hashing.families.SplitMixHash` (pass
``hash_family="tabulation"`` in :class:`repro.core.config.SketchConfig`).

Tables are filled from the SplitMix64 stream of the seed, so the whole
function is reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.families import HashFamily, HashFunction, seed_sequence
from repro.hashing.mixers import MASK64, splitmix64

__all__ = ["TabulationHash", "TabulationFamily"]

_BYTES = 8
_TABLE_SIZE = 256


class TabulationHash(HashFunction):
    """One simple-tabulation hash function over 64-bit keys.

    Construction cost is 8 * 256 derived words (a few microseconds);
    evaluation is 8 table lookups and 7 XORs.  Instances are immutable.
    """

    __slots__ = ("seed", "_tables", "_tables_np")

    def __init__(self, seed: int) -> None:
        self.seed = seed & MASK64
        words = seed_sequence(self.seed, _BYTES * _TABLE_SIZE)
        self._tables = [
            words[i * _TABLE_SIZE : (i + 1) * _TABLE_SIZE] for i in range(_BYTES)
        ]
        self._tables_np = np.array(self._tables, dtype=np.uint64)

    def __call__(self, key: int) -> int:
        key &= MASK64
        h = 0
        for i in range(_BYTES):
            h ^= self._tables[i][(key >> (8 * i)) & 0xFF]
        return h

    def batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        h = np.zeros_like(keys)
        for i in range(_BYTES):
            byte = (keys >> np.uint64(8 * i)) & np.uint64(0xFF)
            h ^= self._tables_np[i][byte]
        return h

    def __repr__(self) -> str:
        return f"TabulationHash(seed={self.seed:#x})"


class TabulationFamily(HashFamily):
    """Family of independent :class:`TabulationHash` functions.

    Member tables are filled from disjoint regions of the seed's
    SplitMix64 stream, so members share no table entries.
    """

    def function(self, index: int) -> TabulationHash:
        if index < 0:
            raise ConfigurationError(f"index must be non-negative, got {index}")
        derived = splitmix64((self.seed ^ (index * 0x2545F4914F6CDD1D)) & MASK64)
        return TabulationHash(derived)
