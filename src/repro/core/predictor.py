"""The sketch-based streaming link predictor (the paper's method).

:class:`MinHashLinkPredictor` maintains, for every vertex seen in the
stream:

* one :class:`~repro.sketches.minhash.KMinHash` of its neighbor set
  (``k`` slot minima + witnesses; all vertices share a single
  :class:`~repro.hashing.HashBank` so sketches are comparable), and
* one degree counter (exact by default).

Per stream edge ``(u, v)``: two sketch updates and two counter
increments — ``O(k)`` vectorized work, *constant time per edge*.  Space
is ``16k + 8`` bytes per vertex, *constant space per vertex*.  Those
are the two headline resource claims of the abstract, and benchmarks
E2/E4 measure them.

Queries combine the pair's sketch collisions with degrees through the
estimator algebra of :mod:`repro.core.estimators`; the supported
measures are exactly the registry of :mod:`repro.exact.measures`, so
any experiment can ask the sketch and the exact oracle the *same*
question by name.

Example
-------
>>> from repro import MinHashLinkPredictor, SketchConfig
>>> from repro.graph import from_pairs
>>> predictor = MinHashLinkPredictor(SketchConfig(k=64, seed=7))
>>> predictor.process(from_pairs([(0, 2), (1, 2), (0, 3), (1, 3)]))
4
>>> predictor.score(0, 1, "common_neighbors")  # true answer: 2
2.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional

import numpy as np

from repro.core.block import apply_edge_block
from repro.core.config import SketchConfig
from repro.core.degrees import CountMinDegrees, DegreeTracker, ExactDegrees
from repro.core.estimators import (
    clamp_intersection,
    common_neighbors_from_jaccard,
    jaccard_std_error,
    union_size_from_jaccard,
    witness_sum_from_matches,
)
from repro.errors import ConfigurationError, SketchStateError
from repro.exact.measures import Measure, measure_by_name
from repro.hashing import HashBank
from repro.interface import LinkPredictor
from repro.sketches.minhash import KMinHash

__all__ = ["MinHashLinkPredictor", "PairEstimate", "SketchArrays", "merge_shards"]


class SketchArrays(NamedTuple):
    """A predictor's entire per-vertex state as contiguous arrays.

    Returned by :meth:`MinHashLinkPredictor.export_arrays`; consumed by
    checkpointing (:mod:`repro.core.persistence`) and the batch query
    engine (:mod:`repro.serve`).  Row ``i`` of every matrix belongs to
    ``vertex_ids[i]``; ``vertex_ids`` is sorted ascending so row lookup
    is a binary search.
    """

    #: Sorted vertex ids, ``int64 (n,)``.
    vertex_ids: np.ndarray
    #: Slot minima, ``uint64 (n, k)``.
    values: np.ndarray
    #: Slot witnesses, ``int64 (n, k)``; ``None`` without witness tracking.
    witnesses: Optional[np.ndarray]
    #: Per-sketch update counters, ``int64 (n,)``.
    update_counts: np.ndarray
    #: Degrees as currently believed by the tracker, ``int64 (n,)``.
    degrees: np.ndarray


@dataclass(frozen=True)
class PairEstimate:
    """All paper measures for one pair, with the Jaccard error bar.

    Returned by :meth:`MinHashLinkPredictor.estimate`; fields mirror the
    paper's three target measures plus the degrees that parameterise
    them and the ±1σ standard error of the underlying Ĵ.
    """

    u: int
    v: int
    jaccard: float
    common_neighbors: float
    adamic_adar: float
    resource_allocation: float
    degree_u: int
    degree_v: int
    jaccard_std_error: float


class MinHashLinkPredictor(LinkPredictor):
    """MinHash-sketch streaming link predictor.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.SketchConfig`; defaults are the
        paper-typical ``k=128`` with witness tracking and exact degrees.
    """

    method_name = "minhash"

    __slots__ = ("config", "bank", "_sketches", "_degrees")

    def __init__(self, config: Optional[SketchConfig] = None) -> None:
        self.config = config or SketchConfig()
        self.bank = HashBank(self.config.seed, self.config.k)
        self._sketches: Dict[int, KMinHash] = {}
        self._degrees: DegreeTracker
        if self.config.degree_mode == "exact":
            self._degrees = ExactDegrees()
        else:
            self._degrees = CountMinDegrees(
                width=self.config.countmin_width,
                depth=self.config.countmin_depth,
                seed=self.config.seed ^ 0xDE6EE5,
            )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _sketch_of(self, vertex: int) -> KMinHash:
        sketch = self._sketches.get(vertex)
        if sketch is None:
            sketch = KMinHash(self.bank, track_witnesses=self.config.track_witnesses)
            self._sketches[vertex] = sketch
        return sketch

    def update(self, u: int, v: int) -> None:
        """Consume one stream edge: ``O(k)`` vectorized work.

        Self-loops are rejected (the measures are defined on simple
        graphs).  Duplicate arrivals are idempotent on the sketches but
        increment degrees, so on multi-edge streams the degree-consuming
        estimators drift *upward*: ``preferential_attachment`` scales
        with the product of inflated arrival counts, and ``adamic_adar``
        / ``resource_allocation`` damp each witness by an inflated
        degree (biasing those sums *downward*).  Pre-filter with
        :func:`repro.graph.stream.deduplicated`, or ingest through a
        :class:`~repro.stream.policies.StreamGuard` with a
        ``duplicate_edge`` policy — the runner then reports how many
        duplicates it saw (``stats()["duplicate_edges_detected"]``).
        """
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise ConfigurationError(f"vertex ids must be non-negative, got ({u}, {v})")
        # One fused hash evaluation for both endpoints (hot path).
        hashes_v, hashes_u = self.bank.values_pair(v, u)
        self._sketch_of(u).update_hashed(v, hashes_v)
        self._sketch_of(v).update_hashed(u, hashes_u)
        self._degrees.increment(u)
        self._degrees.increment(v)

    def update_block(self, us, vs) -> int:
        """Consume a whole edge batch through the vectorized kernel.

        Bit-identical to ``for u, v in zip(us, vs): self.update(u, v)``
        — sketch values, witnesses, update counts, and degrees all match
        the sequential loop exactly (the property the hypothesis suite
        pins) — but hashes the entire batch in one
        :meth:`~repro.hashing.HashBank.values_block` pass and applies
        scatter-min updates to packed per-vertex matrices, which is
        ~10x the scalar path at realistic batch sizes (bench E4).

        The whole batch validates up front: any self-loop or negative
        id raises :class:`~repro.errors.ConfigurationError` *before*
        any mutation, so a rejected batch leaves the predictor exactly
        as it was.  Returns the number of edges applied.  Duplicate
        arrivals inside or across batches behave exactly as in
        :meth:`update` (idempotent sketches, inflated degrees — see the
        bias note there).
        """
        return apply_edge_block(self, us, vs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def degree(self, vertex: int) -> int:
        return self._degrees.get(vertex)

    @property
    def vertex_count(self) -> int:
        """Number of vertices currently sketched."""
        return len(self._sketches)

    def jaccard(self, u: int, v: int) -> float:
        """Unbiased MinHash estimate of ``J(N(u), N(v))``."""
        su = self._sketches.get(u)
        sv = self._sketches.get(v)
        if su is None or sv is None:
            return 0.0
        return su.jaccard(sv)

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Estimate any registered measure for the pair (see module
        docstring for the estimator derivations).

        Unseen-vertex policy (pinned by the regression suite, and
        mirrored exactly by :class:`repro.serve.QueryEngine`): if either
        endpoint has never appeared in the stream, **every** measure
        scores 0.0 — including ``preferential_attachment``, whose
        Count-Min degree estimate for an unseen vertex can otherwise be
        a spurious positive.  Queries never raise ``KeyError``.
        Self-pairs ``(u, u)`` are answered as a pair of identical
        neighborhoods (``Ĵ = 1``, common neighbors clamp to the
        degree); zero-degree endpoints score 0.0.
        """
        measure = measure_by_name(measure_name)
        return self._score(u, v, measure)

    def _score(self, u: int, v: int, measure: Measure) -> float:
        # Policy: unseen vertex => 0.0 for every measure, checked before
        # any degree lookup so approximate degree tables cannot invent a
        # score for a vertex that was never sketched.
        su = self._sketches.get(u)
        sv = self._sketches.get(v)
        if su is None or sv is None:
            return 0.0
        du = self.degree(u)
        dv = self.degree(v)
        if measure.kind == "degree_product":
            return float(du * dv)
        if du == 0 or dv == 0:
            return 0.0
        j = su.jaccard(sv)
        if measure.name == "jaccard":
            return j  # the direct, unbiased estimate — no degree plug-in
        if measure.kind == "overlap_ratio":
            intersection = common_neighbors_from_jaccard(j, du, dv)
            return measure.ratio(intersection, du, dv)  # type: ignore[misc]
        # Witness sums.  Common neighbors has the closed form; general
        # weights go through the Horvitz–Thompson path over witnesses.
        if measure.name == "common_neighbors":
            return common_neighbors_from_jaccard(j, du, dv)
        if not self.config.track_witnesses:
            raise SketchStateError(
                f"measure {measure.name!r} needs witness tracking; "
                "construct with SketchConfig(track_witnesses=True)"
            )
        union = union_size_from_jaccard(j, du, dv)
        witness_degrees = (
            self._degrees.get(int(w)) for w in su.matching_witnesses(sv)
        )
        raw = witness_sum_from_matches(
            union, witness_degrees, measure.witness_weight, self.config.k
        )
        # A witness-sum cannot exceed min(du, dv) times the largest
        # possible per-witness weight; common weights peak at degree 2.
        ceiling = min(du, dv) * measure.witness_weight(2)  # type: ignore[misc]
        return min(raw, ceiling)

    def estimate(self, u: int, v: int) -> PairEstimate:
        """All three paper measures (plus RA) for one pair, with the
        Jaccard standard error, in a single sketch comparison."""
        j = self.jaccard(u, v)
        du = self.degree(u)
        dv = self.degree(v)
        return PairEstimate(
            u=u,
            v=v,
            jaccard=j,
            common_neighbors=clamp_intersection(
                common_neighbors_from_jaccard(j, du, dv), du, dv
            ),
            adamic_adar=self.score(u, v, "adamic_adar"),
            resource_allocation=self.score(u, v, "resource_allocation"),
            degree_u=du,
            degree_v=dv,
            jaccard_std_error=jaccard_std_error(j, self.config.k),
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def export_arrays(self) -> SketchArrays:
        """Snapshot all per-vertex state as contiguous arrays.

        One ``(n, k)`` matrix per sketch component plus the degree
        vector, rows sorted by vertex id.  This is the export surface
        shared by checkpointing and the batch query engine: both need
        the same matrices, and building them in one place keeps the
        row-order convention (sorted ids) impossible to get wrong.

        The arrays are fresh copies — mutating them never touches the
        live predictor, and further stream updates never invalidate an
        earlier export.
        """
        vertex_ids = np.array(sorted(self._sketches), dtype=np.int64)
        n = len(vertex_ids)
        k = self.config.k
        track = self.config.track_witnesses
        values = np.empty((n, k), dtype=np.uint64)
        witnesses = np.empty((n, k), dtype=np.int64) if track else None
        update_counts = np.empty(n, dtype=np.int64)
        degrees = np.empty(n, dtype=np.int64)
        for row, vertex in enumerate(vertex_ids.tolist()):
            sketch = self._sketches[vertex]
            values[row] = sketch.values
            if witnesses is not None:
                witnesses[row] = sketch.witnesses
            update_counts[row] = sketch.update_count
            degrees[row] = self.degree(vertex)
        return SketchArrays(vertex_ids, values, witnesses, update_counts, degrees)

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def merge(self, other: "MinHashLinkPredictor") -> "MinHashLinkPredictor":
        """Combine two predictors built over *disjoint stream partitions*.

        This is the scale-out story: split an edge stream across
        workers, sketch each partition independently (same
        :class:`SketchConfig`, so the hash banks coincide), and merge.
        Per-vertex k-mins merges are exact for neighborhood unions, and
        degree counters add, so on simple streams whose *edges* are
        partitioned (each undirected edge processed by exactly one
        worker) the merged predictor is **bit-identical** to a
        single-pass predictor over the concatenated stream — the
        property the test-suite pins.

        Raises :class:`SketchStateError` for mismatched configurations
        and :class:`ConfigurationError` for Count-Min degree mode
        (conservative Count-Min tables are not mergeable — see
        :meth:`repro.sketches.countmin.CountMin.merge`).
        """
        if other.config != self.config:
            raise SketchStateError(
                "can only merge predictors with identical configurations "
                f"(got {self.config} vs {other.config})"
            )
        self.config.require_mergeable()
        merged = MinHashLinkPredictor(self.config)
        for vertex, sketch in self._sketches.items():
            other_sketch = other._sketches.get(vertex)
            merged._sketches[vertex] = (
                sketch.copy() if other_sketch is None else sketch.merge(other_sketch)
            )
        for vertex, sketch in other._sketches.items():
            if vertex not in self._sketches:
                merged._sketches[vertex] = sketch.copy()
        merged._degrees.merge_from(self._degrees)
        merged._degrees.merge_from(other._degrees)
        return merged

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def nominal_bytes(self) -> int:
        sketch_bytes = sum(s.nominal_bytes() for s in self._sketches.values())
        return sketch_bytes + self._degrees.nominal_bytes()

    def bytes_per_vertex(self) -> float:
        """Average packed bytes per sketched vertex (0 if none yet)."""
        if not self._sketches:
            return 0.0
        return self.nominal_bytes() / len(self._sketches)

    def __repr__(self) -> str:
        return (
            f"MinHashLinkPredictor(k={self.config.k}, "
            f"vertices={len(self._sketches)}, "
            f"witnesses={self.config.track_witnesses})"
        )


def merge_shards(shards: "list[MinHashLinkPredictor]") -> MinHashLinkPredictor:
    """Reduce shard predictors into one (the parallel-ingest join step).

    Folds left-to-right through :meth:`MinHashLinkPredictor.merge`, so
    slot ties (two shards holding the same minimum) resolve in shard
    order — the same witness a serial pass would have kept, since a
    serial stream presents the lower-offset arrival first only when
    hash values genuinely tie, which `merge` breaks identically for any
    association order.  Raises :class:`~repro.errors.ConfigurationError`
    on an empty shard list or a non-mergeable configuration, and
    :class:`~repro.errors.SketchStateError` on mismatched shard configs.
    """
    if not shards:
        raise ConfigurationError("merge_shards needs at least one shard predictor")
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    return merged
