"""The fully dynamic (deletion-tolerant) streaming link predictor.

:class:`MinHashLinkPredictor` is append-only: its per-vertex k-mins
sketches are monotone folds, so a retracted edge can never leave them,
and on churning streams the structure drifts away from the live graph
(experiment E11c measures exactly this).  This module is the dynamic
counterpart the fully-dynamic literature calls for: per vertex, a
:class:`~repro.sketches.dynamic.DynamicKMinHash` — a counter-backed
account of arrivals and retractions — from which an ordinary
:class:`~repro.sketches.minhash.KMinHash` view of the *live* neighbor
set is materialized on demand.  Every query therefore reflects adds,
deletes, and (with ``SketchConfig.ttl > 0``) TTL expiry against the
stream's high-water timestamp, while scoring itself reuses the
append-only estimator algebra through a throwaway view — the same trick
:class:`~repro.core.windowed.WindowedMinHashPredictor` uses.

The merge algebra is a ℤ-module (counts add, last-seen times max), so
sharded ingestion with deletes stays exact: serial and merge-folded
states export **bit-identical** arrays, under any interleaving of adds
and deletes — the property the hypothesis suite pins.

Time is always *stream* time (record timestamps); the predictor tracks
the high-water mark of everything it has consumed and never consults a
wall clock, so TTL expiry replays bit-identically from checkpoints.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, NamedTuple, Optional

import numpy as np

from repro.core.block import apply_dynamic_block
from repro.core.config import SketchConfig
from repro.core.degrees import DegreeTracker
from repro.core.predictor import MinHashLinkPredictor, PairEstimate, SketchArrays
from repro.errors import ConfigurationError, SketchStateError
from repro.exact.measures import measure_by_name
from repro.graph.stream import StreamRecord
from repro.hashing import HashBank
from repro.interface import LinkPredictor
from repro.sketches.dynamic import DynamicKMinHash

__all__ = ["DynamicMinHashPredictor", "DynamicArrays", "merge_dynamic_shards"]

#: High-water sentinel meaning "no timestamp consumed yet".
_NO_TIME = float("-inf")


class DynamicArrays(NamedTuple):
    """A dynamic predictor's entire counter state as contiguous arrays.

    The checkpoint surface (:mod:`repro.core.persistence`): a CSR-style
    layout over per-vertex neighbor accounts.  Vertex ``vertex_ids[i]``
    owns entries ``indptr[i]:indptr[i+1]`` of the three parallel entry
    arrays, with entry keys sorted ascending inside each vertex — the
    canonical serialization order, so equal states produce equal bytes.
    """

    #: Sorted vertex ids, ``int64 (n,)``.
    vertex_ids: np.ndarray
    #: CSR row pointers, ``int64 (n + 1,)``.
    indptr: np.ndarray
    #: Neighbor keys, ``int64 (e,)``.
    keys: np.ndarray
    #: Signed live counts, ``int64 (e,)``.
    counts: np.ndarray
    #: Last-seen stream times, ``float64 (e,)``.
    last_seen: np.ndarray
    #: Per-vertex operation counters, ``int64 (n,)``.
    op_counts: np.ndarray
    #: Stream high-water timestamp (``-inf`` if none consumed).
    high_water: float


class _LiveDegrees(DegreeTracker):
    """Read-only degree view answering *live* degrees at query time.

    Handed to the throwaway scoring view so witness-sum estimators see
    dynamic degrees for every vertex (witnesses included), never the
    inflated arrival counts an append-only tracker would report.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "DynamicMinHashPredictor") -> None:
        self._owner = owner

    def increment(self, vertex: int) -> None:  # pragma: no cover - guard
        raise ConfigurationError("dynamic degree views are read-only")

    def increment_block(self, us, vs) -> None:  # pragma: no cover - guard
        raise ConfigurationError("dynamic degree views are read-only")

    def merge_from(self, other: DegreeTracker) -> None:  # pragma: no cover - guard
        raise ConfigurationError("dynamic degree views are read-only")

    def get(self, vertex: int) -> int:
        return self._owner.degree(vertex)

    def nominal_bytes(self) -> int:
        return 0


class DynamicMinHashPredictor(LinkPredictor):
    """Deletion-tolerant MinHash streaming link predictor.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.SketchConfig`; ``dynamic_mode`` is
        forced on (constructing this class *is* the opt-in), and a
        positive ``ttl`` additionally expires neighbors idle for longer
        than ``ttl`` stream-time units.

    Notes
    -----
    ``update``/``delete`` accept an optional stream timestamp; the
    predictor's notion of "now" is the high-water mark over everything
    consumed, so liveness is a pure function of the ingested records.
    Deleting an edge that was never added leaves a negative counter —
    deliberate, so shard merges commute; the stream guard is the layer
    that quarantines such deletes on guarded pipelines.
    """

    method_name = "dynamic"

    __slots__ = ("config", "bank", "_sketches", "_high_water")

    def __init__(self, config: Optional[SketchConfig] = None) -> None:
        base = config or SketchConfig()
        if not base.dynamic_mode:
            base = replace(base, dynamic_mode=True)
        self.config = base
        self.bank = HashBank(self.config.seed, self.config.k)
        self._sketches: Dict[int, DynamicKMinHash] = {}
        self._high_water = _NO_TIME

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _sketch_of(self, vertex: int) -> DynamicKMinHash:
        sketch = self._sketches.get(vertex)
        if sketch is None:
            sketch = DynamicKMinHash(
                self.bank, track_witnesses=self.config.track_witnesses
            )
            self._sketches[vertex] = sketch
        return sketch

    def _observe_time(self, timestamp: float) -> None:
        if timestamp > self._high_water:
            self._high_water = timestamp

    def _check_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise ConfigurationError(
                f"vertex ids must be non-negative, got ({u}, {v})"
            )

    def update(self, u: int, v: int, timestamp: float = 0.0) -> None:
        """Consume one edge arrival ``{u, v}`` at stream time
        ``timestamp`` (``O(1)`` counter work; hashing is deferred to
        query-time materialization)."""
        self._check_edge(u, v)
        self._sketch_of(u).add(v, timestamp)
        self._sketch_of(v).add(u, timestamp)
        self._observe_time(timestamp)

    def delete(self, u: int, v: int, timestamp: float = 0.0) -> None:
        """Consume one edge retraction of ``{u, v}``.

        Exact inverse of :meth:`update` on the counter algebra: after a
        matched add/delete pair the live neighbor sets — and therefore
        every score — are as if the edge never arrived.
        """
        self._check_edge(u, v)
        self._sketch_of(u).remove(v, timestamp)
        self._sketch_of(v).remove(u, timestamp)
        self._observe_time(timestamp)

    def apply(self, record: StreamRecord) -> None:
        """Consume one typed :class:`~repro.graph.stream.StreamRecord`."""
        if record.op == "add":
            self.update(record.u, record.v, record.timestamp)
        elif record.op == "delete":
            self.delete(record.u, record.v, record.timestamp)
        else:
            raise ConfigurationError(f"unknown stream op {record.op!r}")

    def update_block(self, us, vs, timestamps=None) -> int:
        """Consume a whole arrival batch through the batched kernel —
        equal to the scalar loop for any arrival order (counter addition
        commutes).  Returns the number of edges applied."""
        return apply_dynamic_block(self, us, vs, timestamps, op="add")

    def delete_block(self, us, vs, timestamps=None) -> int:
        """Consume a whole retraction batch through the batched kernel
        (the delete path of :func:`~repro.core.block.apply_dynamic_block`)."""
        return apply_dynamic_block(self, us, vs, timestamps, op="delete")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The stream high-water timestamp (0.0 before any record)."""
        return self._high_water if self._high_water > _NO_TIME else 0.0

    def degree(self, vertex: int) -> int:
        """The vertex's *live* degree: adds minus deletes, minus TTL
        expiries, at the current high-water time.  0 for unseen."""
        sketch = self._sketches.get(vertex)
        if sketch is None:
            return 0
        return sketch.live_degree(self.now, self.config.ttl)

    @property
    def vertex_count(self) -> int:
        """Vertices with any accounted activity (live or not)."""
        return len(self._sketches)

    def _view(self, u: int, v: int) -> Optional[MinHashLinkPredictor]:
        """A throwaway append-only view holding the two endpoints'
        materialized live sketches, scored by the standard estimator
        path with live degrees for every vertex."""
        su = self._sketches.get(u)
        sv = self._sketches.get(v)
        if su is None or sv is None:
            return None
        now = self.now
        ttl = self.config.ttl
        view = MinHashLinkPredictor.__new__(MinHashLinkPredictor)
        view.config = self.config
        view.bank = self.bank
        if u == v:
            view._sketches = {u: su.materialize(now, ttl)}
        else:
            view._sketches = {
                u: su.materialize(now, ttl),
                v: sv.materialize(now, ttl),
            }
        view._degrees = _LiveDegrees(self)
        return view

    def jaccard(self, u: int, v: int) -> float:
        """MinHash estimate of ``J`` over the *live* neighbor sets."""
        view = self._view(u, v)
        if view is None:
            return 0.0
        return view.jaccard(u, v)

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Estimate any registered measure against the live graph.

        Same unseen-vertex policy as the append-only predictor: either
        endpoint never active (or no longer live) scores 0.0; queries
        never raise ``KeyError``.
        """
        view = self._view(u, v)
        if view is None:
            # Still validate the measure name: unknown measures raise
            # regardless of which vertices have been seen.
            measure_by_name(measure_name)
            return 0.0
        return view.score(u, v, measure_name)

    def estimate(self, u: int, v: int) -> PairEstimate:
        """All paper measures for one pair over the live graph."""
        view = self._view(u, v)
        if view is None:
            view = MinHashLinkPredictor(self.config)
        return view.estimate(u, v)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def export_arrays(self) -> SketchArrays:
        """Materialized live state in the standard
        :class:`~repro.core.predictor.SketchArrays` layout.

        Every consumer of the append-only export surface — fingerprints,
        the packed query engine, reports — works unchanged on a dynamic
        predictor: rows are the materialized live sketches at the
        current high-water time, ``update_counts`` carry operation
        counts, and ``degrees`` are live degrees.  A pure function of
        the counter state, so serial and shard-merged predictors export
        identical bytes.
        """
        vertex_ids = np.array(sorted(self._sketches), dtype=np.int64)
        n = len(vertex_ids)
        k = self.config.k
        track = self.config.track_witnesses
        now = self.now
        ttl = self.config.ttl
        values = np.empty((n, k), dtype=np.uint64)
        witnesses = np.empty((n, k), dtype=np.int64) if track else None
        update_counts = np.empty(n, dtype=np.int64)
        degrees = np.empty(n, dtype=np.int64)
        for row, vertex in enumerate(vertex_ids.tolist()):
            sketch = self._sketches[vertex]
            view = sketch.materialize(now, ttl)
            values[row] = view.values
            if witnesses is not None:
                witnesses[row] = view.witnesses
            update_counts[row] = sketch.op_count
            degrees[row] = sketch.live_degree(now, ttl)
        return SketchArrays(vertex_ids, values, witnesses, update_counts, degrees)

    def export_dynamic_arrays(self) -> DynamicArrays:
        """The raw counter state as CSR arrays (the checkpoint surface).

        Lossless, unlike :meth:`export_arrays`: restoring from these
        arrays reproduces the predictor exactly, including dead and
        negative counters that future merges may still need.
        """
        vertex_ids = np.array(sorted(self._sketches), dtype=np.int64)
        n = len(vertex_ids)
        indptr = np.zeros(n + 1, dtype=np.int64)
        op_counts = np.empty(n, dtype=np.int64)
        chunks_keys = []
        chunks_counts = []
        chunks_seen = []
        for row, vertex in enumerate(vertex_ids.tolist()):
            sketch = self._sketches[vertex]
            entries = list(sketch.items())
            indptr[row + 1] = indptr[row] + len(entries)
            op_counts[row] = sketch.op_count
            chunks_keys.extend(entry[0] for entry in entries)
            chunks_counts.extend(entry[1] for entry in entries)
            chunks_seen.extend(entry[2] for entry in entries)
        return DynamicArrays(
            vertex_ids=vertex_ids,
            indptr=indptr,
            keys=np.array(chunks_keys, dtype=np.int64),
            counts=np.array(chunks_counts, dtype=np.int64),
            last_seen=np.array(chunks_seen, dtype=np.float64),
            op_counts=op_counts,
            high_water=self._high_water,
        )

    @classmethod
    def from_dynamic_arrays(
        cls, config: SketchConfig, arrays: DynamicArrays
    ) -> "DynamicMinHashPredictor":
        """Rebuild a predictor from :meth:`export_dynamic_arrays` output
        (the checkpoint restore path); exact inverse of the export."""
        predictor = cls(config)
        vertex_ids = arrays.vertex_ids.tolist()
        indptr = arrays.indptr.tolist()
        keys = arrays.keys.tolist()
        counts = arrays.counts.tolist()
        last_seen = arrays.last_seen.tolist()
        op_counts = arrays.op_counts.tolist()
        for row, vertex in enumerate(vertex_ids):
            sketch = DynamicKMinHash(
                predictor.bank, track_witnesses=predictor.config.track_witnesses
            )
            for position in range(indptr[row], indptr[row + 1]):
                sketch._entries[keys[position]] = [
                    counts[position],
                    last_seen[position],
                ]
            sketch.op_count = op_counts[row]
            predictor._sketches[vertex] = sketch
        predictor._high_water = arrays.high_water
        return predictor

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def merge(self, other: "DynamicMinHashPredictor") -> "DynamicMinHashPredictor":
        """Combine two shard predictors (new object).

        Per-vertex counter merges are a ℤ-module sum — commutative and
        associative under *any* interleaving of adds and deletes across
        shards, even when a delete lands on a different shard than its
        add (the counter simply passes through a negative excursion
        until both merge in).  High-water times max.  The merged state
        exports bit-identically to a serial pass over the concatenated
        stream — the property the hypothesis suite pins.
        """
        if other.config != self.config:
            raise SketchStateError(
                "can only merge predictors with identical configurations "
                f"(got {self.config} vs {other.config})"
            )
        merged = DynamicMinHashPredictor(self.config)
        for vertex, sketch in self._sketches.items():
            other_sketch = other._sketches.get(vertex)
            merged._sketches[vertex] = (
                sketch.copy() if other_sketch is None else sketch.merge(other_sketch)
            )
        for vertex, sketch in other._sketches.items():
            if vertex not in self._sketches:
                merged._sketches[vertex] = sketch.copy()
        merged._high_water = max(self._high_water, other._high_water)
        return merged

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Drop counter entries that can no longer affect any
        materialization (zero counts; expired ones under a TTL).  Call
        on sealed states only — post-merge, pre-checkpoint — since a
        future merge could resurrect a dropped key.  Returns entries
        dropped; vertices left with no entries are removed entirely."""
        now = self.now
        ttl = self.config.ttl
        dropped = 0
        empty = []
        for vertex in sorted(self._sketches):
            sketch = self._sketches[vertex]
            dropped += sketch.compact(now, ttl)
            if sketch.entry_count() == 0:
                empty.append(vertex)
        for vertex in empty:
            del self._sketches[vertex]
        return dropped

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def nominal_bytes(self) -> int:
        return sum(s.nominal_bytes() for s in self._sketches.values()) + 8

    def entry_count(self) -> int:
        """Total accounted ``(vertex, neighbor)`` entries (live or not)."""
        return sum(s.entry_count() for s in self._sketches.values())

    def __repr__(self) -> str:
        return (
            f"DynamicMinHashPredictor(k={self.config.k}, "
            f"vertices={len(self._sketches)}, ttl={self.config.ttl}, "
            f"entries={self.entry_count()})"
        )


def merge_dynamic_shards(
    shards: "list[DynamicMinHashPredictor]",
) -> DynamicMinHashPredictor:
    """Reduce dynamic shard predictors into one (any fold order gives
    the same state — the merge is commutative and associative).  Raises
    :class:`~repro.errors.ConfigurationError` on an empty list."""
    if not shards:
        raise ConfigurationError("merge_dynamic_shards needs at least one shard")
    merged = shards[0]
    for shard in shards[1:]:
        merged = merged.merge(shard)
    return merged
