"""Estimator algebra: from sketch observables to measure estimates.

The predictors observe three quantities per query pair ``(u, v)``:

* ``Ĵ`` — the MinHash collision fraction (slots whose minima agree),
* ``d(u), d(v)`` — the maintained degrees,
* the *witnesses* of the colliding slots — the keys achieving the
  shared minima.

Everything the paper estimates is a deterministic function of these,
collected here as pure functions so the math is testable in isolation
from the streaming machinery.

Derivations
-----------

**Jaccard.**  Each slot's collision indicator is Bernoulli(J)
(independent across slots), so ``Ĵ = matches/k`` is unbiased with
variance ``J(1-J)/k`` and Hoeffding tail ``2·exp(-2kε²)``.

**Union and common neighbors.**  Degrees give
``|N(u) ∪ N(v)| = d(u) + d(v) - CN`` and the definition gives
``CN = J·|∪|``; solving the two equations::

    CN = J (d(u)+d(v)) / (1+J)        |∪| = (d(u)+d(v)) / (1+J)

With exact degrees, plugging ``Ĵ`` for ``J`` yields the plug-in
estimators below (a smooth function of an unbiased estimator —
asymptotically unbiased with bias O(1/k), which E3 confirms decays).

**Witness sums (Adamic–Adar & friends).**  Condition on slot ``i``
colliding: the shared witness ``w_i`` is then a uniform sample of
``N(u) ∩ N(v)``.  Unconditionally, for any weight ``f``::

    E[ f(w_i) · 1{collision_i} ] = Σ_{w∈∩} f(w) / |∪|

so ``|∪̂| · (1/k) Σ_{colliding i} f(d(w_i))`` estimates
``Σ_{w∈∩} f(d(w))`` — Adamic–Adar with ``f = 1/ln d``, resource
allocation with ``f = 1/d``, and plain CN with ``f = 1`` (in which case
the expression algebraically reduces to the closed form above).

**Clamping.**  Estimates are clamped into their feasible ranges
(``CN ≤ min(d(u), d(v))``, ``J ≤ 1``, sums ≥ 0).  Clamping can only
move an estimate closer to a truth that respects the same constraint,
so it never hurts and the accuracy experiments use the clamped values.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ConfigurationError

__all__ = [
    "union_size_from_jaccard",
    "common_neighbors_from_jaccard",
    "witness_sum_from_matches",
    "clamp_intersection",
    "jaccard_std_error",
]


def union_size_from_jaccard(jaccard: float, degree_u: int, degree_v: int) -> float:
    """Plug-in estimate of ``|N(u) ∪ N(v)| = (d(u)+d(v)) / (1+J)``.

    Edge cases are explicit so empty-overlap pairs can never divide by
    zero or return ``inf``: at ``jaccard == 0`` the union is exactly
    ``d(u) + d(v)`` (disjoint neighborhoods), and two zero-degree
    endpoints have an empty union.  The result is always finite and
    non-negative — the witness-sum estimators multiply by it, so an
    ``inf`` here would poison every downstream measure.
    """
    _check_jaccard(jaccard)
    total = degree_u + degree_v
    if total <= 0:
        return 0.0
    if jaccard == 0.0:
        return float(total)
    return total / (1.0 + jaccard)


def common_neighbors_from_jaccard(jaccard: float, degree_u: int, degree_v: int) -> float:
    """Plug-in estimate ``CN = J (d(u)+d(v)) / (1+J)``, clamped feasible."""
    _check_jaccard(jaccard)
    raw = jaccard * (degree_u + degree_v) / (1.0 + jaccard) if jaccard > 0 else 0.0
    return clamp_intersection(raw, degree_u, degree_v)


def witness_sum_from_matches(
    union_size: float,
    witness_degrees: Iterable[int],
    weight: Callable[[int], float],
    k: int,
) -> float:
    """Horvitz–Thompson estimate of ``Σ_{w∈∩} weight(d(w))``.

    Parameters
    ----------
    union_size:
        Estimated ``|N(u) ∪ N(v)|`` (from
        :func:`union_size_from_jaccard`).
    witness_degrees:
        Degrees of the witnesses of the *colliding* slots only.
    weight:
        The measure's witness weight (of a degree).
    k:
        Total number of slots (colliding or not) — the estimator
        averages over all ``k``, with non-colliding slots contributing
        zero.
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    weighted = sum(weight(d) for d in witness_degrees)
    return max(0.0, union_size * weighted / k)


def clamp_intersection(value: float, degree_u: int, degree_v: int) -> float:
    """Clamp an intersection-size estimate into ``[0, min(du, dv)]``.

    ``du``/``dv`` are the degrees *as reported by the caller's tracker*.
    Under :class:`~repro.core.degrees.CountMinDegrees` an over-estimated
    degree raises the clamp ceiling above the true degree — the clamp
    still guarantees the estimate is feasible with respect to the
    degrees the estimator actually used (``[0, min(du, dv)]``), which is
    the invariant the property suite pins; it cannot recover exactness
    the tracker already gave up.  Non-positive reported degrees clamp
    everything to 0.0.
    """
    ceiling = float(min(degree_u, degree_v))
    if ceiling <= 0.0:
        return 0.0
    return max(0.0, min(ceiling, value))


def jaccard_std_error(jaccard: float, k: int) -> float:
    """Standard error of the collision estimator, ``sqrt(J(1-J)/k)``.

    Evaluated at the estimate itself (the usual plug-in practice); the
    value is what the CLI reports as the ±1σ band on Ĵ.
    """
    _check_jaccard(jaccard)
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    return (jaccard * (1.0 - jaccard) / k) ** 0.5


def _check_jaccard(jaccard: float) -> None:
    if not 0.0 <= jaccard <= 1.0:
        raise ConfigurationError(f"jaccard must be in [0, 1], got {jaccard}")
