"""Directed streaming link prediction (extension).

The paper folds directed datasets to undirected before sketching; this
module keeps the directions.  Each vertex carries **two** MinHash
sketches — one of its successor set, one of its predecessor set — plus
two degree counters, and every estimator of
:mod:`repro.core.estimators` applies per direction:

* ``direction="out"``: measures over common *successors* — "u and v
  follow the same accounts" (homophily of interests);
* ``direction="in"``: measures over common *predecessors* — "u and v
  are followed by the same accounts" (shared audience, the classic
  co-citation signal).

Space is exactly twice the undirected predictor (still constant per
vertex); each arc updates one out-sketch and one in-sketch.

The :class:`~repro.interface.LinkPredictor` protocol's direction-less
``score`` defaults to ``"out"``; :meth:`score_directed` exposes the
full interface, and :meth:`DirectedExactOracle.score_directed` mirrors
it exactly on a materialised :class:`~repro.graph.digraph.
DirectedGraph`, so directed accuracy studies work like undirected ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import SketchConfig
from repro.core.degrees import DegreeTracker, ExactDegrees
from repro.core.estimators import (
    common_neighbors_from_jaccard,
    union_size_from_jaccard,
    witness_sum_from_matches,
)
from repro.errors import ConfigurationError, SketchStateError
from repro.exact.measures import Measure, measure_by_name
from repro.graph.digraph import DirectedGraph
from repro.hashing import HashBank
from repro.interface import LinkPredictor
from repro.sketches.minhash import KMinHash

__all__ = ["DirectedMinHashPredictor", "DirectedExactOracle"]

_DIRECTIONS = ("out", "in")


def _check_direction(direction: str) -> None:
    if direction not in _DIRECTIONS:
        raise ConfigurationError(
            f"direction must be 'out' or 'in', got {direction!r}"
        )


class DirectedMinHashPredictor(LinkPredictor):
    """Direction-aware MinHash streaming link predictor."""

    method_name = "directed_minhash"

    __slots__ = ("config", "bank", "_sketches", "_degrees")

    def __init__(self, config: Optional[SketchConfig] = None) -> None:
        self.config = config or SketchConfig()
        if self.config.degree_mode != "exact":
            raise ConfigurationError(
                "the directed predictor tracks exact directional degrees; "
                f"got degree_mode={self.config.degree_mode!r}"
            )
        self.bank = HashBank(self.config.seed ^ 0xD12EC7, self.config.k)
        self._sketches: Dict[str, Dict[int, KMinHash]] = {"out": {}, "in": {}}
        self._degrees: Dict[str, DegreeTracker] = {
            "out": ExactDegrees(),
            "in": ExactDegrees(),
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _sketch_of(self, direction: str, vertex: int) -> KMinHash:
        store = self._sketches[direction]
        sketch = store.get(vertex)
        if sketch is None:
            sketch = KMinHash(self.bank, track_witnesses=self.config.track_witnesses)
            store[vertex] = sketch
        return sketch

    def update(self, u: int, v: int) -> None:
        """Consume one *arc* ``u -> v``.

        ``v`` joins u's successor sketch; ``u`` joins v's predecessor
        sketch; the two directional degrees increment.
        """
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise ConfigurationError(f"vertex ids must be non-negative, got ({u}, {v})")
        hashes_v, hashes_u = self.bank.values_pair(v, u)
        self._sketch_of("out", u).update_hashed(v, hashes_v)
        self._sketch_of("in", v).update_hashed(u, hashes_u)
        self._degrees["out"].increment(u)
        self._degrees["in"].increment(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def degree(self, vertex: int) -> int:
        """Protocol degree: the *out*-degree (see :meth:`degree_directed`)."""
        return self._degrees["out"].get(vertex)

    def degree_directed(self, vertex: int, direction: str) -> int:
        """Directional degree (0 for unseen vertices)."""
        _check_direction(direction)
        return self._degrees[direction].get(vertex)

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Protocol score: the ``"out"`` direction."""
        return self.score_directed(u, v, measure_name, "out")

    def score_directed(
        self, u: int, v: int, measure_name: str, direction: str
    ) -> float:
        """Any registered measure over the directional neighborhoods.

        Witness weights are evaluated at the witness's degree *in the
        same direction* (a common successor's weight uses its own
        out-degree — the directed Adamic–Adar convention of scoring a
        witness by how selective its behaviour is in that direction).
        """
        _check_direction(direction)
        measure = measure_by_name(measure_name)
        du = self.degree_directed(u, direction)
        dv = self.degree_directed(v, direction)
        if measure.kind == "degree_product":
            return float(du * dv)
        su = self._sketches[direction].get(u)
        sv = self._sketches[direction].get(v)
        if su is None or sv is None or du == 0 or dv == 0:
            return 0.0
        j = su.jaccard(sv)
        if measure.name == "jaccard":
            return j
        if measure.kind == "overlap_ratio":
            intersection = common_neighbors_from_jaccard(j, du, dv)
            return measure.ratio(intersection, du, dv)  # type: ignore[misc]
        if measure.name == "common_neighbors":
            return common_neighbors_from_jaccard(j, du, dv)
        if not self.config.track_witnesses:
            raise SketchStateError(
                f"measure {measure_name!r} needs witness tracking; "
                "construct with SketchConfig(track_witnesses=True)"
            )
        union = union_size_from_jaccard(j, du, dv)
        degrees = self._degrees[direction]
        witness_degrees = (
            degrees.get(int(w)) for w in su.matching_witnesses(sv)
        )
        raw = witness_sum_from_matches(
            union, witness_degrees, measure.witness_weight, self.config.k
        )
        ceiling = min(du, dv) * measure.witness_weight(2)  # type: ignore[misc]
        return min(raw, ceiling)

    @property
    def vertex_count(self) -> int:
        """Vertices with at least one sketch (either direction)."""
        return len(self._sketches["out"].keys() | self._sketches["in"].keys())

    def nominal_bytes(self) -> int:
        sketch_bytes = sum(
            sketch.nominal_bytes()
            for store in self._sketches.values()
            for sketch in store.values()
        )
        degree_bytes = sum(d.nominal_bytes() for d in self._degrees.values())
        return sketch_bytes + degree_bytes

    def __repr__(self) -> str:
        return (
            f"DirectedMinHashPredictor(k={self.config.k}, "
            f"vertices={self.vertex_count})"
        )


class DirectedExactOracle(LinkPredictor):
    """Exact directed comparator (materialises the digraph)."""

    method_name = "directed_exact"

    __slots__ = ("graph",)

    def __init__(self) -> None:
        self.graph = DirectedGraph()

    def update(self, u: int, v: int) -> None:
        """Insert the arc ``u -> v``."""
        self.graph.add_arc(u, v)

    def degree(self, vertex: int) -> int:
        return self.graph.out_degree(vertex)

    def degree_directed(self, vertex: int, direction: str) -> int:
        """Directional degree (0 for unseen vertices)."""
        _check_direction(direction)
        return self.graph.degree(vertex, direction) if vertex in self.graph else 0

    def score(self, u: int, v: int, measure_name: str) -> float:
        return self.score_directed(u, v, measure_name, "out")

    def score_directed(
        self, u: int, v: int, measure_name: str, direction: str
    ) -> float:
        """Exact directional measure (same conventions as the sketch)."""
        _check_direction(direction)
        measure = measure_by_name(measure_name)
        du = self.degree_directed(u, direction)
        dv = self.degree_directed(v, direction)
        if measure.kind == "degree_product":
            return float(du * dv)
        if du == 0 or dv == 0:
            return 0.0
        nu = self.graph.neighborhood(u, direction)
        nv = self.graph.neighborhood(v, direction)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        shared = [w for w in nu if w in nv]
        if measure.kind == "overlap_ratio":
            return measure.ratio(float(len(shared)), du, dv)  # type: ignore[misc]
        return sum(
            measure.witness_weight(self.degree_directed(w, direction))  # type: ignore[misc]
            for w in shared
        )

    @property
    def vertex_count(self) -> int:
        """Vertices materialised so far."""
        return self.graph.vertex_count

    def nominal_bytes(self) -> int:
        return self.graph.nominal_bytes()

    def __repr__(self) -> str:
        return f"DirectedExactOracle({self.graph!r})"
