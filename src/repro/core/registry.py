"""Factory for predictor methods by name.

Experiments, the CLI and downstream users construct methods from string
names (``"minhash"``, ``"biased"``, ``"dynamic"``, ``"exact"``,
``"edge_reservoir"``, ``"neighbor_reservoir"``), so one configuration
file can sweep over
methods without touching code.  The factory translates a
:class:`~repro.core.config.SketchConfig` into each method's own notion
of "equivalent parameters" — in particular, the equal-space rules used
by experiment E8 are centralised in :func:`equal_space_parameters`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.biased import BiasedMinHashLinkPredictor
from repro.core.config import SketchConfig
from repro.core.dynamic import DynamicMinHashPredictor
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.exact.baselines import EdgeReservoirBaseline, NeighborReservoirBaseline
from repro.exact.oracle import ExactOracle
from repro.interface import LinkPredictor

__all__ = ["METHODS", "build_predictor", "equal_space_parameters"]


def _build_minhash(config: SketchConfig, expected_vertices: Optional[int]) -> LinkPredictor:
    return MinHashLinkPredictor(config)


def _build_biased(config: SketchConfig, expected_vertices: Optional[int]) -> LinkPredictor:
    return BiasedMinHashLinkPredictor(config)


def _build_dynamic(config: SketchConfig, expected_vertices: Optional[int]) -> LinkPredictor:
    return DynamicMinHashPredictor(config)


def _build_exact(config: SketchConfig, expected_vertices: Optional[int]) -> LinkPredictor:
    return ExactOracle()


def _build_edge_reservoir(
    config: SketchConfig, expected_vertices: Optional[int]
) -> LinkPredictor:
    if expected_vertices is None:
        raise ConfigurationError(
            "edge_reservoir needs expected_vertices to derive an "
            "equal-space capacity from the sketch configuration"
        )
    capacity = equal_space_parameters(config, expected_vertices)["edge_reservoir_capacity"]
    return EdgeReservoirBaseline(capacity=capacity, seed=config.seed)


def _build_neighbor_reservoir(
    config: SketchConfig, expected_vertices: Optional[int]
) -> LinkPredictor:
    sample = equal_space_parameters(config, expected_vertices or 0)[
        "neighbor_reservoir_sample"
    ]
    return NeighborReservoirBaseline(sample_size=sample, seed=config.seed)


METHODS: Dict[str, Callable[[SketchConfig, Optional[int]], LinkPredictor]] = {
    "minhash": _build_minhash,
    "biased": _build_biased,
    "dynamic": _build_dynamic,
    "exact": _build_exact,
    "edge_reservoir": _build_edge_reservoir,
    "neighbor_reservoir": _build_neighbor_reservoir,
}


def equal_space_parameters(config: SketchConfig, expected_vertices: int) -> Dict[str, int]:
    """Translate a sketch budget into equal-space baseline parameters.

    The MinHash predictor spends ``bytes_per_vertex() + 8`` nominal
    bytes per vertex.  At that budget:

    * the neighbor reservoir keeps ``bytes_per_vertex() / 8`` neighbor
      ids per vertex (its entries are single words, the sketch's pairs);
    * the edge reservoir gets the *total* byte pool
      (``vertices * bytes_per_vertex / 8`` packed edges), which needs
      the expected vertex count.
    """
    per_vertex = config.bytes_per_vertex()
    return {
        "neighbor_reservoir_sample": max(1, per_vertex // 8),
        "edge_reservoir_capacity": max(1, expected_vertices * per_vertex // 8),
    }


def build_predictor(
    method: str,
    config: Optional[SketchConfig] = None,
    expected_vertices: Optional[int] = None,
) -> LinkPredictor:
    """Construct a predictor by method name.

    Internal plumbing behind the facade — application code should
    prefer :func:`repro.api.build_predictor`, which accepts a config
    first and delegates here.  This spelling stays stable for the
    experiment harnesses that sweep method names.

    ``expected_vertices`` is needed only by the global-budget
    ``edge_reservoir`` baseline (to size its equal-space capacity).
    """
    try:
        factory = METHODS[method]
    except KeyError:
        known = ", ".join(METHODS)
        raise ConfigurationError(
            f"unknown method {method!r}; known methods: {known}"
        ) from None
    return factory(config or SketchConfig(), expected_vertices)
