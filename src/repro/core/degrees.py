"""Degree tracking for the streaming predictors.

Every estimator in :mod:`repro.core.estimators` consumes vertex degrees.
The paper maintains them exactly — one integer per vertex is already
within the "constant space per vertex" budget — but DESIGN.md ablation 3
asks what happens when even that word is approximated away, so both
trackers implement one tiny protocol:

* :class:`ExactDegrees` — a dict of counters; exact, 8 nominal bytes
  per vertex.
* :class:`CountMinDegrees` — a fixed-size conservative Count-Min table;
  never underestimates, total space independent of the vertex count.

Degrees count *edge arrivals* per endpoint.  On simple-graph streams
(each undirected edge arrives once) that equals the true degree; on
multi-edge streams callers should pre-filter with
:func:`repro.graph.stream.deduplicated`, as every method documents.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.sketches.countmin import CountMin

__all__ = ["DegreeTracker", "ExactDegrees", "CountMinDegrees"]


class DegreeTracker(ABC):
    """Minimal protocol shared by both degree-tracking modes."""

    @abstractmethod
    def increment(self, vertex: int) -> None:
        """Count one new incident edge at ``vertex``."""

    def increment_block(self, us, vs) -> None:
        """Count both endpoints of a whole edge batch.

        The default replays the exact scalar order — ``u`` then ``v``,
        edge by edge — so order-dependent trackers (conservative
        Count-Min, whose cell increments depend on the interleaving of
        colliding keys) stay bit-identical to sequential ingestion.
        Order-independent trackers override with a counting fast path.
        """
        for u, v in zip(np.asarray(us).tolist(), np.asarray(vs).tolist()):
            self.increment(u)
            self.increment(v)

    @abstractmethod
    def get(self, vertex: int) -> int:
        """Current degree belief (0 for unseen vertices)."""

    @abstractmethod
    def nominal_bytes(self) -> int:
        """Packed size of the tracker state."""

    @abstractmethod
    def merge_from(self, other: "DegreeTracker") -> None:
        """Fold another tracker's counts into this one, in place.

        The shard-reduce step of parallel ingestion: when an edge
        stream is partitioned across workers, each endpoint's arrivals
        split across shards and degree counts simply add.  Trackers
        whose representation is not additive (conservative Count-Min)
        raise :class:`~repro.errors.ConfigurationError` instead of
        silently corrupting their one-sided error guarantee.
        """


class ExactDegrees(DegreeTracker):
    """Exact per-vertex degree counters (the paper's setting)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def increment(self, vertex: int) -> None:
        self._counts[vertex] = self._counts.get(vertex, 0) + 1

    def increment_block(self, us, vs) -> None:
        """Exact counters commute, so a batch reduces to one bincount:
        one dict write per *unique* endpoint instead of two per edge."""
        unique, counts = np.unique(
            np.concatenate([np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)]),
            return_counts=True,
        )
        table = self._counts
        for vertex, count in zip(unique.tolist(), counts.tolist()):
            table[vertex] = table.get(vertex, 0) + count

    def get(self, vertex: int) -> int:
        return self._counts.get(vertex, 0)

    def nominal_bytes(self) -> int:
        return 8 * len(self._counts)

    def merge_from(self, other: "DegreeTracker") -> None:
        if not isinstance(other, ExactDegrees):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into ExactDegrees"
            )
        counts = self._counts
        for vertex, degree in other._counts.items():
            counts[vertex] = counts.get(vertex, 0) + degree

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"ExactDegrees(vertices={len(self._counts)})"


class CountMinDegrees(DegreeTracker):
    """Approximate degrees in a fixed-size Count-Min table.

    Conservative updates keep the one-sided (over-)estimation tight on
    the skewed degree distributions of real graphs.  Space is
    ``8 * width * depth`` bytes regardless of how many vertices appear.
    """

    __slots__ = ("_sketch",)

    def __init__(self, width: int = 1 << 14, depth: int = 4, seed: int = 0) -> None:
        self._sketch = CountMin(width=width, depth=depth, seed=seed, conservative=True)

    def increment(self, vertex: int) -> None:
        self._sketch.update(vertex)

    def get(self, vertex: int) -> int:
        return self._sketch.estimate(vertex)

    def nominal_bytes(self) -> int:
        return self._sketch.nominal_bytes()

    def merge_from(self, other: "DegreeTracker") -> None:
        # Conservative Count-Min is deliberately non-mergeable: the
        # underlying CountMin.merge refuses for conservative tables, and
        # degree tracking always uses the conservative variant.
        raise ConfigurationError(
            "conservative Count-Min degree tables are not mergeable; "
            "sharded ingestion requires degree_mode='exact'"
        )

    def __repr__(self) -> str:
        return (
            f"CountMinDegrees(width={self._sketch.width}, "
            f"depth={self._sketch.depth})"
        )
