"""LSH self-join over the vertex sketches (extension).

The paper's predictor answers *pairwise* queries: given ``(u, v)``,
estimate the measure.  Many applications need the inverse: *find* the
high-similarity pairs among millions of vertices without any candidate
list.  Because every vertex already carries a MinHash signature, the
classic banding construction (Indyk–Motwani LSH; Leskovec–Rajaraman–
Ullman ch. 3) provides exactly that, for free:

* split the ``k`` slots into ``bands`` groups of ``rows = k/bands``
  consecutive slots;
* within each band, hash the band's slot values to a bucket id; two
  vertices collide in a band iff all ``rows`` slots agree there
  (probability ``J^rows``);
* a pair becomes a *candidate* if it collides in at least one band —
  probability ``1 - (1 - J^rows)^bands``, an S-curve with threshold
  ``J* ≈ (1/bands)^(1/rows)``.

The index is built in one pass over the sketch store (``O(n·bands)``)
and returns candidates whose estimated Jaccard clears a cut-off,
optionally rescored by any registered measure.  Pairs that are already
edges can be filtered by the caller (the sketches themselves cannot
know adjacency — by design they summarise neighborhoods, not edges).

Bucket blow-up guard: a bucket larger than ``max_bucket`` vertices is
skipped (contributing ``O(bucket²)`` candidates from near-identical
neighborhoods is usually a pathology, e.g. a crawler artifact); skipped
buckets are counted and reported so silent truncation is impossible.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.hashing.mixers import MASK64, splitmix64

__all__ = ["LshCandidateIndex", "lsh_threshold", "bands_for_threshold"]


def lsh_threshold(bands: int, rows: int) -> float:
    """The similarity at the S-curve's inflection, ``(1/b)^(1/r)``.

    Pairs well above it are caught with probability near 1; pairs well
    below, near 0.
    """
    if bands < 1 or rows < 1:
        raise ConfigurationError(
            f"bands and rows must be positive, got {bands}x{rows}"
        )
    return (1.0 / bands) ** (1.0 / rows)


def bands_for_threshold(k: int, threshold: float) -> Tuple[int, int]:
    """Choose ``(bands, rows)`` with ``bands*rows <= k`` whose S-curve
    threshold is closest to ``threshold``.

    >>> bands_for_threshold(128, 0.5)
    (25, 5)
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    best: Tuple[int, int] = (1, k)
    best_gap = abs(lsh_threshold(1, k) - threshold)
    for rows in range(1, k + 1):
        bands = k // rows
        if bands < 1:
            break
        gap = abs(lsh_threshold(bands, rows) - threshold)
        if gap < best_gap:
            best, best_gap = (bands, rows), gap
    return best


@dataclass(frozen=True)
class CandidatePair:
    """One discovered pair with its estimated Jaccard."""

    u: int
    v: int
    jaccard: float


class LshCandidateIndex(object):
    """Banding index over a predictor's vertex sketches.

    Parameters
    ----------
    predictor:
        A warm :class:`~repro.core.predictor.MinHashLinkPredictor`.
        The index reads its slot arrays; it does not mutate them.
    bands / rows:
        Banding shape; ``bands * rows`` must not exceed the sketch
        size ``k``.  Use :func:`bands_for_threshold` to derive a shape
        from a similarity cut-off.
    max_bucket:
        Buckets larger than this are skipped (see module docstring).
    min_degree:
        Vertices below this degree are not indexed: their neighborhoods
        are too small for a Jaccard self-join to mean anything, and
        leaving them out keeps buckets informative.
    """

    __slots__ = ("predictor", "bands", "rows", "max_bucket", "min_degree", "_buckets", "skipped_buckets")

    def __init__(
        self,
        predictor: MinHashLinkPredictor,
        bands: int,
        rows: int,
        max_bucket: int = 200,
        min_degree: int = 2,
    ) -> None:
        if bands < 1 or rows < 1:
            raise ConfigurationError(
                f"bands and rows must be positive, got {bands}x{rows}"
            )
        if bands * rows > predictor.config.k:
            raise ConfigurationError(
                f"bands*rows = {bands * rows} exceeds the sketch size "
                f"k = {predictor.config.k}"
            )
        if max_bucket < 2:
            raise ConfigurationError(f"max_bucket must be >= 2, got {max_bucket}")
        self.predictor = predictor
        self.bands = bands
        self.rows = rows
        self.max_bucket = max_bucket
        self.min_degree = min_degree
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self.skipped_buckets = 0
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _band_signature(self, values, band: int) -> int:
        """Deterministic 64-bit hash of one band's slot values.

        Chained SplitMix64 over the band — stable across processes
        (unlike Python's salted ``hash``), so index contents are
        reproducible.
        """
        accumulator = band + 1
        start = band * self.rows
        for value in values[start : start + self.rows]:
            accumulator = splitmix64((accumulator ^ int(value)) & MASK64)
        return accumulator

    def _build(self) -> None:
        for vertex, sketch in self.predictor._sketches.items():
            if self.predictor.degree(vertex) < self.min_degree:
                continue
            for band in range(self.bands):
                signature = self._band_signature(sketch.values, band)
                self._buckets[(band, signature)].append(vertex)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """This shape's S-curve similarity threshold."""
        return lsh_threshold(self.bands, self.rows)

    def capture_probability(self, jaccard: float) -> float:
        """Probability a pair with the given true Jaccard is returned:
        ``1 - (1 - J^rows)^bands``."""
        if not 0.0 <= jaccard <= 1.0:
            raise ConfigurationError(f"jaccard must be in [0, 1], got {jaccard}")
        return 1.0 - (1.0 - jaccard**self.rows) ** self.bands

    def candidate_pairs(self, min_jaccard: float = 0.0) -> Iterator[CandidatePair]:
        """Yield distinct co-bucketed pairs with Ĵ ≥ ``min_jaccard``.

        Each pair is yielded once (deduplicated across bands) with its
        sketch-estimated Jaccard.  Overfull buckets are skipped and
        counted in :attr:`skipped_buckets`.
        """
        self.skipped_buckets = 0
        seen: Set[Tuple[int, int]] = set()
        for bucket in self._buckets.values():
            if len(bucket) < 2:
                continue
            if len(bucket) > self.max_bucket:
                self.skipped_buckets += 1
                continue
            for i, u in enumerate(bucket):
                for v in bucket[i + 1 :]:
                    pair = (u, v) if u < v else (v, u)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    estimate = self.predictor.jaccard(pair[0], pair[1])
                    if estimate >= min_jaccard:
                        yield CandidatePair(pair[0], pair[1], estimate)

    def candidates_of(self, vertex: int) -> Set[int]:
        """All indexed vertices co-bucketed with ``vertex`` in any band.

        The single-vertex query the batch engine's ``top_k`` prunes
        through: the returned set contains every indexed vertex whose
        sketch agrees with ``vertex``'s on at least one full band —
        for a ``rows=1`` index that is *exactly* the set of vertices
        with ``Ĵ > 0``, so pruning loses nothing.  The vertex's band
        signatures are computed from its own sketch, so the query works
        even when ``vertex`` itself fell under ``min_degree`` and was
        not indexed.  Unlike :meth:`candidate_pairs`, overfull buckets
        are **not** skipped: a single-vertex probe costs ``O(bucket)``,
        not ``O(bucket²)``, so the blow-up guard is unnecessary and
        skipping would silently lose true candidates.

        Returns the empty set for vertices with no sketch (the
        unseen-vertex policy: nothing to recommend).
        """
        sketch = self.predictor._sketches.get(vertex)
        if sketch is None:
            return set()
        found: Set[int] = set()
        for band in range(self.bands):
            signature = self._band_signature(sketch.values, band)
            found.update(self._buckets.get((band, signature), ()))
        found.discard(vertex)
        return found

    def top_pairs(
        self, limit: int, measure_name: str = "jaccard", min_jaccard: float = 0.0
    ) -> List[Tuple[CandidatePair, float]]:
        """The ``limit`` best discovered pairs under any registered
        measure (rescored through the predictor), ties broken on the
        pair for determinism."""
        if limit < 1:
            raise ConfigurationError(f"limit must be positive, got {limit}")
        scored = [
            (pair, self.predictor.score(pair.u, pair.v, measure_name))
            for pair in self.candidate_pairs(min_jaccard)
        ]
        scored.sort(key=lambda item: (-item[1], item[0].u, item[0].v))
        return scored[:limit]

    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"LshCandidateIndex(bands={self.bands}, rows={self.rows}, "
            f"threshold={self.threshold:.3f}, buckets={len(self._buckets)})"
        )
