"""The paper's contribution: sketch-based streaming link prediction.

Public entry points:

* :class:`~repro.core.predictor.MinHashLinkPredictor` — the uniform
  MinHash method (Jaccard, common neighbors, Adamic–Adar, and the rest
  of the measure registry).
* :class:`~repro.core.biased.BiasedMinHashLinkPredictor` — the
  vertex-biased variant specialised for weighted witness sums.
* :class:`~repro.core.config.SketchConfig` — all knobs, plus the
  accuracy-planning helpers derived from the Hoeffding guarantee.
* :func:`~repro.core.registry.build_predictor` — string-keyed factory
  over every method, including the exact oracle and the sampling
  baselines.
"""

from repro.core.biased import BiasedMinHashLinkPredictor
from repro.core.block import apply_dynamic_block, apply_edge_block, coerce_edge_batch
from repro.core.config import (
    SketchConfig,
    hoeffding_epsilon,
    hoeffding_failure_probability,
    required_k,
)
from repro.core.degrees import CountMinDegrees, DegreeTracker, ExactDegrees
from repro.core.directed import DirectedExactOracle, DirectedMinHashPredictor
from repro.core.dynamic import (
    DynamicArrays,
    DynamicMinHashPredictor,
    merge_dynamic_shards,
)
from repro.core.lshindex import LshCandidateIndex, bands_for_threshold, lsh_threshold
from repro.core.memory import MemoryReport, memory_report
from repro.core.persistence import load_predictor, save_predictor
from repro.core.predictor import MinHashLinkPredictor, PairEstimate, merge_shards
from repro.core.registry import METHODS, build_predictor, equal_space_parameters
from repro.core.windowed import WindowedMinHashPredictor

__all__ = [
    "BiasedMinHashLinkPredictor",
    "CountMinDegrees",
    "DegreeTracker",
    "DirectedExactOracle",
    "DirectedMinHashPredictor",
    "DynamicArrays",
    "DynamicMinHashPredictor",
    "ExactDegrees",
    "LshCandidateIndex",
    "METHODS",
    "MemoryReport",
    "MinHashLinkPredictor",
    "PairEstimate",
    "SketchConfig",
    "WindowedMinHashPredictor",
    "apply_dynamic_block",
    "apply_edge_block",
    "coerce_edge_batch",
    "bands_for_threshold",
    "build_predictor",
    "equal_space_parameters",
    "lsh_threshold",
    "hoeffding_epsilon",
    "hoeffding_failure_probability",
    "load_predictor",
    "memory_report",
    "merge_dynamic_shards",
    "merge_shards",
    "required_k",
    "save_predictor",
]
