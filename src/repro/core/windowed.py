"""Sliding-window streaming link prediction (extension).

The paper estimates measures over the *entire* stream history.  Many
deployments want recency instead: "who should connect, judging by the
last N interactions?"  This module extends the sketch machinery to a
sliding window using **pane rotation**, the standard trick for making
an insert-only summary forgetful without per-item timestamps:

* time is divided into *panes* of ``pane_edges`` stream edges;
* each pane owns a complete sketch store (sketches + degree counts)
  and receives all updates that arrive during its slice;
* the window is the ``panes`` most recent slices; when a pane fills,
  the oldest store is dropped whole.

Querying merges the per-pane state on the fly:

* the window neighborhood ``N_W(u)`` is the union of the pane
  neighborhoods, and a k-mins MinHash **merge is exact for union** —
  the merged sketch is bit-identical to the sketch a single pass over
  the window would have built;
* on a simple stream (each undirected edge arrives once — the library's
  standing convention, see ``deduplicated``), every window edge lives
  in exactly one pane, so the window degree is the *sum* of pane
  degrees, and the whole estimator algebra of
  :mod:`repro.core.estimators` applies unchanged.

Space is ``panes`` times the single-store cost — still constant per
vertex — and each update touches exactly one pane, preserving the
constant-time-per-edge property.  The window length is edge-count
based; wall-clock windows follow by choosing ``pane_edges`` from the
stream rate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.config import SketchConfig
from repro.core.degrees import DegreeTracker
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.exact.measures import measure_by_name
from repro.interface import LinkPredictor
from repro.sketches.minhash import KMinHash

__all__ = ["WindowedMinHashPredictor"]


class _WindowDegrees(DegreeTracker):
    """Read-only degree view summing over a window's live panes.

    Handed to the throwaway single-store view inside
    :meth:`WindowedMinHashPredictor.score`, so witness-sum estimators
    see *window* degrees for every vertex (including witnesses), not
    just for the queried endpoints.
    """

    __slots__ = ("_window",)

    def __init__(self, window: "WindowedMinHashPredictor") -> None:
        self._window = window

    def increment(self, vertex: int) -> None:  # pragma: no cover - guard
        raise ConfigurationError("window degree views are read-only")

    def merge_from(self, other: DegreeTracker) -> None:  # pragma: no cover - guard
        raise ConfigurationError("window degree views are read-only")

    def get(self, vertex: int) -> int:
        return self._window.degree(vertex)

    def nominal_bytes(self) -> int:
        return 0  # accounted by the panes themselves


class WindowedMinHashPredictor(LinkPredictor):
    """Link prediction over the last ``~ panes * pane_edges`` edges.

    Parameters
    ----------
    config:
        Sketch parameters shared by every pane (one
        :class:`~repro.hashing.HashBank` across panes, so pane sketches
        are mergeable).
    pane_edges:
        Edges per pane.
    panes:
        Number of live panes; the window covers between
        ``(panes - 1) * pane_edges`` and ``panes * pane_edges`` edges
        (the head pane is partially filled).

    Notes
    -----
    Exactness of the window semantics relies on each undirected edge
    arriving at most once *per window* (simple streams).  Re-arrivals
    within one pane are idempotent on sketches but inflate window
    degrees, exactly as for the non-windowed predictor.
    """

    method_name = "windowed_minhash"

    __slots__ = ("config", "pane_edges", "panes", "_stores", "_head_fill")

    def __init__(
        self,
        config: Optional[SketchConfig] = None,
        pane_edges: int = 10_000,
        panes: int = 4,
    ) -> None:
        self.config = config or SketchConfig()
        if self.config.degree_mode != "exact":
            raise ConfigurationError(
                "the windowed predictor requires exact degrees (window "
                "degrees are sums of pane degrees)"
            )
        if pane_edges < 1:
            raise ConfigurationError(f"pane_edges must be positive, got {pane_edges}")
        if panes < 2:
            raise ConfigurationError(f"need at least 2 panes, got {panes}")
        self.pane_edges = pane_edges
        self.panes = panes
        # Head of the deque = oldest pane; tail = currently-filling pane.
        # Panes share the hash bank through a common config/seed.
        self._stores: Deque[MinHashLinkPredictor] = deque(
            [MinHashLinkPredictor(self.config)]
        )
        self._head_fill = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, u: int, v: int) -> None:
        """Route the edge to the filling pane, rotating when full."""
        if self._head_fill >= self.pane_edges:
            self._stores.append(MinHashLinkPredictor(self.config))
            if len(self._stores) > self.panes:
                self._stores.popleft()  # the window forgets a whole pane
            self._head_fill = 0
        self._stores[-1].update(u, v)
        self._head_fill += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def degree(self, vertex: int) -> int:
        """Window degree: sum of pane degrees (exact on simple streams)."""
        return sum(store.degree(vertex) for store in self._stores)

    def _window_sketch(self, vertex: int) -> Optional[KMinHash]:
        """Merged (union) sketch of the vertex over the live panes."""
        merged: Optional[KMinHash] = None
        for store in self._stores:
            sketch = store._sketches.get(vertex)
            if sketch is None:
                continue
            merged = sketch if merged is None else merged.merge(sketch)
        return merged

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Any registered measure, evaluated over the window.

        Implementation: materialise the two merged window sketches and
        delegate to a throwaway single-store view that shares this
        window's degrees — the estimator algebra is identical.
        """
        measure = measure_by_name(measure_name)
        du = self.degree(u)
        dv = self.degree(v)
        if measure.kind == "degree_product":
            return float(du * dv)
        su = self._window_sketch(u)
        sv = self._window_sketch(v)
        if su is None or sv is None or du == 0 or dv == 0:
            return 0.0
        view = MinHashLinkPredictor(self.config)
        view._sketches[u] = su
        view._sketches[v] = sv
        view._degrees = _WindowDegrees(self)
        return view.score(u, v, measure_name)

    @property
    def vertex_count(self) -> int:
        """Vertices present in at least one live pane."""
        seen = set()
        for store in self._stores:
            seen.update(store._sketches)
        return len(seen)

    @property
    def window_edges(self) -> int:
        """Number of stream edges currently covered by the window."""
        return self.pane_edges * (len(self._stores) - 1) + self._head_fill

    def nominal_bytes(self) -> int:
        return sum(store.nominal_bytes() for store in self._stores)

    def __repr__(self) -> str:
        return (
            f"WindowedMinHashPredictor(k={self.config.k}, "
            f"pane_edges={self.pane_edges}, panes={len(self._stores)}/{self.panes}, "
            f"window_edges={self.window_edges})"
        )
