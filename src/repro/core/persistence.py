"""Checkpointing: save and restore predictor state.

Long-running stream consumers need to survive restarts without
replaying the stream.  Because a MinHash predictor's entire state is a
set of fixed-width arrays plus a degree table, it serialises naturally
into a single compressed ``.npz`` archive:

* ``values``/``witnesses`` — the per-vertex slot matrices, stacked in
  one ``(n, k)`` array each (row order = ``vertex_ids``),
* ``degrees`` — the exact degree table,
* configuration scalars (k, seed, flags) for validation at load time,
* a ``sha256`` content checksum over every payload array, verified on
  load, so a torn or bit-rotted file is rejected with
  :class:`~repro.errors.CheckpointCorruptError` instead of resuming
  from garbage.

Restoring reconstructs a predictor that is *bit-identical* to the
original: every future update and query gives the same answer (the
round-trip test pins this).  Checkpoints embed a format version and the
hash seed; loading a checkpoint into an incompatible library version or
configuration fails loudly instead of silently mixing hash spaces.

Writes to a filesystem path are **atomic**: the archive is written to a
temporary sibling file, flushed and fsynced, then moved over the target
with ``os.replace``.  A crash mid-write therefore never destroys the
last good checkpoint — the worst case is a stray ``*.tmp-*`` file that
the next write cleans up.  Writes to an already-open file object (the
distributed-ingest transport) skip the rename dance.

Only the exact-degree configuration is checkpointable: Count-Min degree
tables and the biased predictor's refresh buffers are supported by
their own ``state`` accessors but intentionally not bundled here (the
paper's deployment mode is the exact-degree uniform sketch).
"""

from __future__ import annotations

import hashlib
import os
import time
import zipfile
import zlib
from pathlib import Path
from typing import IO, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.config import SketchConfig
from repro.core.degrees import ExactDegrees
from repro.core.dynamic import DynamicArrays, DynamicMinHashPredictor
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import CheckpointCorruptError, ConfigurationError, ReproError, SketchStateError
from repro.obs.registry import MetricsRegistry
from repro.sketches.minhash import KMinHash

__all__ = [
    "save_predictor",
    "load_predictor",
    "load_predictor_with_metadata",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 2

PathLike = Union[str, Path]

#: Prefix distinguishing caller-supplied metadata fields (stream offset,
#: checkpoint generation, ...) from predictor payload fields.
_META_PREFIX = "meta_"

#: Exceptions numpy/zipfile raise on truncated or garbled archives.  A
#: half-written ``.npz`` can die in the zip directory (``BadZipFile``),
#: in a member's deflate stream (``zlib.error``), in the ``.npy`` header
#: parse (``ValueError``), or at a short read (``EOFError``/``OSError``).
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    zlib.error,
    ValueError,
    EOFError,
    OSError,
)


def _payload_checksum(fields: Mapping[str, np.ndarray]) -> str:
    """Deterministic sha256 over every non-checksum field.

    Field name, dtype, shape and raw bytes all feed the digest, so a
    renamed, retyped, reshaped or bit-flipped array is all caught.
    """
    digest = hashlib.sha256()
    for name in sorted(fields):
        if name == "sha256":
            continue
        array = np.asarray(fields[name])
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _savez_atomic(path_or_file: Union[PathLike, IO[bytes]], fields: Dict[str, np.ndarray]) -> None:
    """Write ``fields`` as a compressed archive, atomically for paths."""
    if hasattr(path_or_file, "write"):
        np.savez_compressed(path_or_file, **fields)
        return
    path = Path(path_or_file)
    # np.savez appends ".npz" to suffixless *paths*, but not to open file
    # objects — mirror that quirk so atomic writes land on the same name.
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **fields)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_predictor(
    predictor: Union[MinHashLinkPredictor, DynamicMinHashPredictor],
    path: Union[PathLike, IO[bytes]],
    *,
    metadata: Optional[Mapping[str, int]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write a checkpoint; returns the number of vertices saved.

    ``metadata`` is an optional mapping of integer-valued fields (e.g.
    ``{"stream_offset": 1024}``) stored alongside the predictor state,
    checksummed with it, and returned verbatim by
    :func:`load_predictor_with_metadata`.

    ``metrics`` (optional) records the save into the ``persist_*``
    instruments: ``persist_save_seconds`` (latency histogram) and
    ``persist_bytes_written_total`` (compressed archive bytes; file
    objects report a position delta when they are seekable).

    Raises :class:`SketchStateError` for configurations whose state is
    not fully capturable (Count-Min degrees).
    """
    started = time.perf_counter()
    if predictor.config.degree_mode != "exact":
        raise SketchStateError(
            "only exact-degree predictors are checkpointable; "
            f"got degree_mode={predictor.config.degree_mode!r}"
        )
    track = predictor.config.track_witnesses
    if isinstance(predictor, DynamicMinHashPredictor):
        # Dynamic predictors checkpoint their *raw counter state* (the
        # lossless CSR export), never the materialized views: a future
        # merge may still need dead or negative counters, and liveness
        # is recomputed from high_water/ttl on every query anyway.
        dynamic = predictor.export_dynamic_arrays()
        saved_rows = len(dynamic.vertex_ids)
        fields: Dict[str, np.ndarray] = {
            "format_version": np.int64(FORMAT_VERSION),
            "dynamic": np.bool_(True),
            "k": np.int64(predictor.config.k),
            "seed": np.uint64(predictor.config.seed),
            "track_witnesses": np.bool_(track),
            "ttl": np.float64(predictor.config.ttl),
            "high_water": np.float64(dynamic.high_water),
            "vertex_ids": dynamic.vertex_ids,
            "adj_indptr": dynamic.indptr,
            "adj_keys": dynamic.keys,
            "adj_counts": dynamic.counts,
            "adj_last_seen": dynamic.last_seen,
            "op_counts": dynamic.op_counts,
        }
    else:
        exported = predictor.export_arrays()
        saved_rows = len(exported.vertex_ids)
        fields = {
            "format_version": np.int64(FORMAT_VERSION),
            "k": np.int64(predictor.config.k),
            "seed": np.uint64(predictor.config.seed),
            "track_witnesses": np.bool_(track),
            "vertex_ids": exported.vertex_ids,
            "values": exported.values,
            "witnesses": (
                exported.witnesses if track else np.empty((0, 0), dtype=np.int64)
            ),
            "update_counts": exported.update_counts,
            "degrees": exported.degrees,
        }
    for key, value in (metadata or {}).items():
        fields[_META_PREFIX + key] = np.int64(value)
    fields["sha256"] = np.frombuffer(bytes.fromhex(_payload_checksum(fields)), dtype=np.uint8)
    before = _position_of(path)
    _savez_atomic(path, fields)
    if metrics is not None and metrics.enabled:
        metrics.histogram(
            "persist_save_seconds", "Wall seconds per checkpoint save"
        ).observe(time.perf_counter() - started)
        written = _archive_bytes(path, before)
        if written is not None:
            metrics.counter(
                "persist_bytes_written_total", "Compressed checkpoint bytes written"
            ).inc(written)
    return saved_rows


def _position_of(path: Union[PathLike, IO[bytes]]) -> Optional[int]:
    """Stream position for seekable file objects, else ``None``."""
    if hasattr(path, "write"):
        try:
            return path.tell()  # type: ignore[union-attr]
        except (OSError, ValueError):
            return None
    return None


def _archive_bytes(path: Union[PathLike, IO[bytes]], before: Optional[int]) -> Optional[int]:
    """Bytes the finished archive occupies (``None`` when unknowable)."""
    if hasattr(path, "write"):
        after = _position_of(path)
        if before is not None and after is not None:
            return after - before
        return None
    resolved = Path(path)
    if resolved.suffix != ".npz":  # mirror np.savez's suffix quirk
        resolved = resolved.with_name(resolved.name + ".npz")
    try:
        return resolved.stat().st_size
    except OSError:
        return None


def load_predictor(
    path: Union[PathLike, IO[bytes]],
) -> Union[MinHashLinkPredictor, DynamicMinHashPredictor]:
    """Reconstruct a predictor from a checkpoint written by
    :func:`save_predictor`.

    The restored object answers every query identically to the saved
    one and accepts further stream updates.  Raises
    :class:`~repro.errors.CheckpointCorruptError` (a
    :class:`SketchStateError`) if the file is truncated, fails its
    embedded checksum, or is not a checkpoint archive at all.
    """
    return load_predictor_with_metadata(path)[0]


def load_predictor_with_metadata(
    path: Union[PathLike, IO[bytes]],
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Union[MinHashLinkPredictor, DynamicMinHashPredictor], Dict[str, int]]:
    """Like :func:`load_predictor`, also returning the metadata mapping
    stored at save time (empty dict if none was supplied).

    ``metrics`` (optional) records successful loads into
    ``persist_load_seconds``.
    """
    started = time.perf_counter()
    try:
        with np.load(path) as archive:
            restored = _restore(archive, describe(path))
    except ReproError:
        raise
    except FileNotFoundError:
        raise  # an absent checkpoint is not a corrupt one
    except _CORRUPTION_ERRORS as error:
        raise CheckpointCorruptError(
            f"checkpoint {describe(path)} is truncated or corrupt: {error}"
        ) from error
    if metrics is not None and metrics.enabled:
        metrics.histogram(
            "persist_load_seconds", "Wall seconds per checkpoint load"
        ).observe(time.perf_counter() - started)
    return restored


def describe(path: Union[PathLike, IO[bytes]]) -> str:
    """A human-readable name for a checkpoint target (path or buffer)."""
    return str(path) if isinstance(path, (str, Path)) else getattr(path, "name", "<buffer>")


#: Every field a version-2 checkpoint must carry (plus ``sha256``,
#: checked separately so its absence gets its own diagnosis).
_REQUIRED_FIELDS = (
    "format_version",
    "k",
    "seed",
    "track_witnesses",
    "vertex_ids",
    "values",
    "witnesses",
    "update_counts",
    "degrees",
)

#: Schema of a dynamic (deletion-tolerant) checkpoint: the raw CSR
#: counter state instead of materialized slot matrices.  The ``dynamic``
#: flag field selects which inventory applies.
_DYNAMIC_REQUIRED_FIELDS = (
    "format_version",
    "dynamic",
    "k",
    "seed",
    "track_witnesses",
    "ttl",
    "high_water",
    "vertex_ids",
    "adj_indptr",
    "adj_keys",
    "adj_counts",
    "adj_last_seen",
    "op_counts",
)


def _restore(
    archive, name: str
) -> Tuple[Union[MinHashLinkPredictor, DynamicMinHashPredictor], Dict[str, int]]:
    fields = {field: archive[field] for field in archive.files}
    # Field inventory before anything else: a valid .npz that is not a
    # predictor checkpoint at all (or a half-schema from some other
    # tool) must fail with a diagnosis, not a KeyError traceback.  The
    # ``dynamic`` flag selects which schema the archive claims to be.
    is_dynamic = "dynamic" in fields and bool(fields["dynamic"])
    required = _DYNAMIC_REQUIRED_FIELDS if is_dynamic else _REQUIRED_FIELDS
    missing = [field for field in required if field not in fields]
    if missing:
        raise CheckpointCorruptError(
            f"checkpoint {name} is not a predictor checkpoint archive: "
            f"missing field(s) {', '.join(missing)} "
            f"(holds: {', '.join(sorted(fields)) or 'nothing'})"
        )
    # Version next: a future format may checksum differently, and the
    # "wrong library version" diagnosis beats a checksum mismatch.
    version = int(fields["format_version"])
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"checkpoint format version {version} is not supported "
            f"(this library writes version {FORMAT_VERSION})"
        )
    stored = fields.pop("sha256", None)
    if stored is None:
        raise CheckpointCorruptError(f"checkpoint {name} has no embedded checksum")
    expected = bytes(np.asarray(stored, dtype=np.uint8)).hex()
    actual = _payload_checksum(fields)
    if actual != expected:
        raise CheckpointCorruptError(
            f"checkpoint {name} failed checksum verification "
            f"(stored {expected[:12]}..., recomputed {actual[:12]}...)"
        )
    try:
        config = SketchConfig(
            k=int(fields["k"]),
            seed=int(fields["seed"]),
            track_witnesses=bool(fields["track_witnesses"]),
            dynamic_mode=is_dynamic,
            ttl=float(fields["ttl"]) if is_dynamic else 0.0,
        )
    except ConfigurationError as error:
        # Checksummed but unusable: the archive was written with a
        # configuration this library refuses to construct.
        raise ConfigurationError(
            f"checkpoint {name} carries an incompatible sketch "
            f"configuration: {error}"
        ) from error
    metadata = {
        field[len(_META_PREFIX):]: int(value)
        for field, value in fields.items()
        if field.startswith(_META_PREFIX)
    }
    if is_dynamic:
        restored = DynamicMinHashPredictor.from_dynamic_arrays(
            config,
            DynamicArrays(
                vertex_ids=fields["vertex_ids"],
                indptr=fields["adj_indptr"],
                keys=fields["adj_keys"],
                counts=fields["adj_counts"],
                last_seen=fields["adj_last_seen"],
                op_counts=fields["op_counts"],
                high_water=float(fields["high_water"]),
            ),
        )
        return restored, metadata
    predictor = MinHashLinkPredictor(config)
    vertex_ids = fields["vertex_ids"]
    values = fields["values"]
    witnesses = fields["witnesses"]
    update_counts = fields["update_counts"]
    degrees = fields["degrees"]
    degree_table: ExactDegrees = predictor._degrees  # type: ignore[assignment]
    for row, vertex in enumerate(vertex_ids.tolist()):
        predictor._sketches[vertex] = KMinHash.from_arrays(
            predictor.bank,
            values[row],
            witnesses[row] if config.track_witnesses else None,
            update_count=int(update_counts[row]),
        )
        if degrees[row]:
            degree_table._counts[vertex] = int(degrees[row])
    return predictor, metadata
