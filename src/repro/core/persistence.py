"""Checkpointing: save and restore predictor state.

Long-running stream consumers need to survive restarts without
replaying the stream.  Because a MinHash predictor's entire state is a
set of fixed-width arrays plus a degree table, it serialises naturally
into a single compressed ``.npz`` archive:

* ``values``/``witnesses`` — the per-vertex slot matrices, stacked in
  one ``(n, k)`` array each (row order = ``vertex_ids``),
* ``degrees`` — the exact degree table,
* configuration scalars (k, seed, flags) for validation at load time.

Restoring reconstructs a predictor that is *bit-identical* to the
original: every future update and query gives the same answer (the
round-trip test pins this).  Checkpoints embed a format version and the
hash seed; loading a checkpoint into an incompatible library version or
configuration fails loudly instead of silently mixing hash spaces.

Only the exact-degree configuration is checkpointable: Count-Min degree
tables and the biased predictor's refresh buffers are supported by
their own ``state`` accessors but intentionally not bundled here (the
paper's deployment mode is the exact-degree uniform sketch).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import SketchConfig
from repro.core.degrees import ExactDegrees
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError, SketchStateError
from repro.sketches.minhash import KMinHash

__all__ = ["save_predictor", "load_predictor", "FORMAT_VERSION"]

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def save_predictor(predictor: MinHashLinkPredictor, path: PathLike) -> int:
    """Write a checkpoint; returns the number of vertices saved.

    Raises :class:`SketchStateError` for configurations whose state is
    not fully capturable (Count-Min degrees).
    """
    if predictor.config.degree_mode != "exact":
        raise SketchStateError(
            "only exact-degree predictors are checkpointable; "
            f"got degree_mode={predictor.config.degree_mode!r}"
        )
    vertex_ids = np.array(sorted(predictor._sketches), dtype=np.int64)
    k = predictor.config.k
    values = np.empty((len(vertex_ids), k), dtype=np.uint64)
    track = predictor.config.track_witnesses
    witnesses = np.empty((len(vertex_ids), k), dtype=np.int64) if track else np.empty((0, 0), dtype=np.int64)
    update_counts = np.empty(len(vertex_ids), dtype=np.int64)
    degrees = np.empty(len(vertex_ids), dtype=np.int64)
    for row, vertex in enumerate(vertex_ids.tolist()):
        sketch = predictor._sketches[vertex]
        values[row] = sketch.values
        if track:
            witnesses[row] = sketch.witnesses
        update_counts[row] = sketch.update_count
        degrees[row] = predictor.degree(vertex)
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        k=np.int64(k),
        seed=np.uint64(predictor.config.seed),
        track_witnesses=np.bool_(track),
        vertex_ids=vertex_ids,
        values=values,
        witnesses=witnesses,
        update_counts=update_counts,
        degrees=degrees,
    )
    return len(vertex_ids)


def load_predictor(path: PathLike) -> MinHashLinkPredictor:
    """Reconstruct a predictor from a checkpoint written by
    :func:`save_predictor`.

    The restored object answers every query identically to the saved
    one and accepts further stream updates.
    """
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint format version {version} is not supported "
                f"(this library writes version {FORMAT_VERSION})"
            )
        config = SketchConfig(
            k=int(archive["k"]),
            seed=int(archive["seed"]),
            track_witnesses=bool(archive["track_witnesses"]),
        )
        predictor = MinHashLinkPredictor(config)
        vertex_ids = archive["vertex_ids"]
        values = archive["values"]
        witnesses = archive["witnesses"]
        update_counts = archive["update_counts"]
        degrees = archive["degrees"]
        degree_table: ExactDegrees = predictor._degrees  # type: ignore[assignment]
        for row, vertex in enumerate(vertex_ids.tolist()):
            sketch = KMinHash(predictor.bank, track_witnesses=config.track_witnesses)
            sketch.values = values[row].copy()
            if config.track_witnesses:
                sketch.witnesses = witnesses[row].copy()
            sketch.update_count = int(update_counts[row])
            predictor._sketches[vertex] = sketch
            if degrees[row]:
                degree_table._counts[vertex] = int(degrees[row])
    return predictor
