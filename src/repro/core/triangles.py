"""Streaming triangle counting on top of the link-prediction sketches
(application extension).

A neat corollary of the paper's machinery: the number of triangles
*closed by* an arriving edge ``(u, v)`` is exactly ``CN(u, v)`` at
arrival time, so summing the streaming common-neighbor estimates over
the edges of the stream estimates the global triangle count — one pass,
constant space per vertex, no extra sketches::

    T = Σ_{(u,v) in stream} CN_before(u, v)

(each triangle is counted exactly once, by its last-arriving edge).

:class:`StreamingTriangleCounter` wraps a
:class:`~repro.core.predictor.MinHashLinkPredictor`: on each edge it
queries the current ĈN of the endpoints *before* applying the update,
accumulates the sum, and maintains everything the predictor normally
maintains — so the same object still answers link-prediction queries.

Accuracy: each ĈN term is the plug-in estimator of
:mod:`repro.core.estimators` (asymptotically unbiased, error
``O(1/√k)`` relative to the pair's union size); errors across edges are
positively correlated through shared sketches, so the global relative
error decays more slowly than ``1/√edges`` but in practice sits at a
few percent for k≥128 (see ``tests/core/test_triangles.py`` for the
measured tolerance on seeded streams).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SketchConfig
from repro.core.predictor import MinHashLinkPredictor
from repro.interface import LinkPredictor

__all__ = ["StreamingTriangleCounter"]


class StreamingTriangleCounter(LinkPredictor):
    """One-pass triangle counter built on the MinHash predictor.

    Exposes the full :class:`~repro.interface.LinkPredictor` protocol
    (delegated to the inner predictor) plus :meth:`triangle_estimate`.
    """

    method_name = "triangle_counter"

    __slots__ = ("predictor", "_triangle_sum", "edges_seen")

    def __init__(self, config: Optional[SketchConfig] = None) -> None:
        self.predictor = MinHashLinkPredictor(config)
        self._triangle_sum = 0.0
        self.edges_seen = 0

    def update(self, u: int, v: int) -> None:
        """Count the triangles this edge closes, then apply it."""
        self._triangle_sum += self.predictor.score(u, v, "common_neighbors")
        self.predictor.update(u, v)
        self.edges_seen += 1

    def triangle_estimate(self) -> float:
        """Current estimate of the number of triangles seen so far."""
        return self._triangle_sum

    def transitivity_estimate(self) -> float:
        """Global clustering estimate ``3T / wedges`` using the exact
        degree table for the wedge count.

        Only available under exact degrees (the default config).
        """
        degrees = self.predictor._degrees
        counts = getattr(degrees, "_counts", None)
        if counts is None:
            raise NotImplementedError(
                "transitivity needs the exact-degree table (degree_mode='exact')"
            )
        wedges = sum(d * (d - 1) // 2 for d in counts.values())
        if wedges == 0:
            return 0.0
        return 3.0 * self._triangle_sum / wedges

    # ------------------------------------------------------------------
    # LinkPredictor delegation
    # ------------------------------------------------------------------

    def score(self, u: int, v: int, measure_name: str) -> float:
        return self.predictor.score(u, v, measure_name)

    def degree(self, vertex: int) -> int:
        return self.predictor.degree(vertex)

    @property
    def vertex_count(self) -> int:
        """Vertices currently sketched."""
        return self.predictor.vertex_count

    def nominal_bytes(self) -> int:
        return self.predictor.nominal_bytes() + 8  # + the running sum

    def __repr__(self) -> str:
        return (
            f"StreamingTriangleCounter(edges={self.edges_seen}, "
            f"triangles~{self._triangle_sum:.0f})"
        )
