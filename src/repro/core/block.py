"""The vectorized block-ingest kernel (scatter-min over packed batches).

The scalar ingest path walks one edge at a time: two fused hash
evaluations, two ``O(k)`` sketch updates, two degree increments — cheap
in theory, but every edge pays numpy's fixed per-call overhead a dozen
times, which is why E4 showed minhash ingest ~30x behind the exact
baseline while the *query* path (which batches) runs 12.5x ahead of its
own scalar loop.  This module closes that gap the same way EdgeSketch
and "Fast and Accurate Graph Stream Summarization" do: hash a whole
edge batch as one array pass, relabel endpoints to dense rows, and
apply segment-minimum updates to packed ``(n, k)`` value matrices.

The kernel is **bit-identical** to the scalar path.  The subtle part is
witness resolution, which must reproduce the scalar tie-breaking
exactly:

* a *strictly* smaller hash overwrites a slot (and its witness);
* an *equal* hash does not — the earliest arrival achieving the final
  minimum keeps the witness, and a minimum already held by the
  pre-batch sketch keeps the pre-batch witness;
* duplicate arrivals are idempotent on the slots but still bump
  ``update_count`` and degrees (exactly the scalar drift documented on
  :meth:`~repro.core.predictor.MinHashLinkPredictor.update`);
* self-loops and negative ids reject the **whole batch before any
  mutation** — a half-applied batch could never be replayed to the
  scalar result.

Implementation notes.  Per batch of ``m`` edges the kernel hashes only
the *unique* keys (hub-heavy streams repeat endpoints constantly), then
works on the deduplicated ``(target, key)`` pairs of the arrival
sequence: scalar ingest inserts key ``v`` into ``sketch(u)`` and key
``u`` into ``sketch(v)`` edge by edge, so the 2m-long arrival sequence
is the edge list with endpoints interleaved, and repeated insertions of
one key into one sketch are idempotent — only the *first* arrival of
each pair can matter.  ``np.unique`` over the packed ``(row, key)``
codes yields the pairs already grouped by target (with each pair's
earliest arrival position, the scalar witness tie-break),
``np.minimum.reduceat`` produces the per-vertex batch minima, and a
second ``reduceat`` over masked arrival positions finds the earliest
arrival achieving each final minimum — the witness the sequential loop
would have kept.  (``reduceat`` over presorted segments is several
times faster than ``np.minimum.at``'s unbuffered scatter on CPython,
and needs no atomics.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sketches.minhash import EMPTY_SLOT, KMinHash

__all__ = ["coerce_edge_batch", "coerce_timestamp_batch", "apply_edge_block", "apply_dynamic_block"]

#: Largest hash a real key may occupy a slot with (EMPTY_SLOT is
#: reserved; the scalar path applies the identical remap).
_VALUE_CAP = EMPTY_SLOT - np.uint64(1)


def coerce_edge_batch(us, vs) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an edge batch into parallel int64 arrays.

    Enforces the scalar :meth:`update` contract on the whole batch —
    equal-length 1-d integer arrays, no negative ids, no self-loops —
    and raises :class:`~repro.errors.ConfigurationError` *before* the
    caller mutates anything, naming the first offending edge.
    """
    try:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
    except (OverflowError, TypeError, ValueError) as error:
        raise ConfigurationError(f"edge batch is not int64-coercible: {error}") from None
    if us.ndim != 1 or vs.ndim != 1:
        raise ConfigurationError(
            f"edge batch must be 1-d arrays, got shapes {us.shape} and {vs.shape}"
        )
    if us.shape[0] != vs.shape[0]:
        raise ConfigurationError(
            f"edge batch endpoint arrays disagree: {us.shape[0]} vs {vs.shape[0]} edges"
        )
    negative = (us < 0) | (vs < 0)
    if negative.any():
        index = int(np.argmax(negative))
        raise ConfigurationError(
            "vertex ids must be non-negative, got "
            f"({int(us[index])}, {int(vs[index])}) at batch index {index}"
        )
    loops = us == vs
    if loops.any():
        index = int(np.argmax(loops))
        raise ConfigurationError(
            f"self-loop on vertex {int(us[index])} at batch index {index} is not allowed"
        )
    return us, vs


def coerce_timestamp_batch(timestamps, count: int) -> np.ndarray:
    """Validate a per-edge timestamp vector into a float64 array.

    ``None`` means "no stream time": a zero vector, matching the scalar
    default ``timestamp=0.0``.  Non-finite entries reject the whole
    batch before any mutation, naming the first offending index.
    """
    if timestamps is None:
        return np.zeros(count, dtype=np.float64)
    try:
        out = np.asarray(timestamps, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"timestamp batch is not float64-coercible: {error}"
        ) from None
    if out.ndim != 1 or out.shape[0] != count:
        raise ConfigurationError(
            f"timestamp batch must be a 1-d array of length {count}, "
            f"got shape {out.shape}"
        )
    bad = ~np.isfinite(out)
    if bad.any():
        index = int(np.argmax(bad))
        raise ConfigurationError(
            f"non-finite timestamp {out[index]} at batch index {index}"
        )
    return out


def apply_edge_block(predictor, us, vs) -> int:
    """Fold a whole edge batch into ``predictor``; returns the edge count.

    Bit-identical to ``for u, v in zip(us, vs): predictor.update(u, v)``
    across sketch values, witnesses, update counts, and degrees — the
    property the hypothesis suite pins.  Validation happens up front:
    a rejected batch leaves the predictor untouched.
    """
    us, vs = coerce_edge_batch(us, vs)
    m = us.shape[0]
    if m == 0:
        return 0
    bank = predictor.bank
    track = predictor.config.track_witnesses

    # The arrival sequence, interleaved exactly as the scalar loop
    # issues updates: (sketch(u0) <- v0), (sketch(v0) <- u0), ...
    # Position order == arrival order, which is what breaks witness
    # ties identically to sequential ingestion.
    targets = np.empty(2 * m, dtype=np.int64)
    keys = np.empty(2 * m, dtype=np.int64)
    targets[0::2] = us
    targets[1::2] = vs
    keys[0::2] = vs
    keys[1::2] = us

    # One _splitmix64_array pass over the unique keys of the batch.
    unique_keys, key_inverse = np.unique(keys, return_inverse=True)
    hashed = bank.values_block(unique_keys)
    np.minimum(hashed, _VALUE_CAP, out=hashed)

    unique_targets, rows = np.unique(targets, return_inverse=True)
    n = unique_targets.shape[0]
    key_count = unique_keys.shape[0]

    # Deduplicate (target, key) pairs: repeated insertions of one key
    # into one sketch are idempotent, so only each pair's *earliest*
    # arrival can matter.  np.unique over the packed codes returns the
    # pairs sorted by (row, key) — already grouped by target — and
    # return_index gives each pair's first arrival position, which is
    # exactly the scalar witness tie-break.
    codes = rows * np.int64(key_count) + key_inverse
    unique_codes, first_arrival = np.unique(codes, return_index=True)
    pair_rows = unique_codes // key_count
    pair_keys = unique_codes % key_count
    pairs = unique_codes.shape[0]
    k = bank.size

    # Segments are 1:1 with rows: pair_rows is sorted and every unique
    # target owns at least one pair, so segment i *is* row i.  Most
    # rows of a typical batch are singletons (a vertex touched by one
    # edge), whose "segment minimum" is just that pair's hash vector and
    # whose witness — wherever the hash improves — is that pair's key,
    # no tie-break required.  Routing them around the reduceat path
    # matters: reduceat over thousands of length-1 segments is a
    # glorified permutation paid at ufunc-machinery prices.
    segment_starts = np.flatnonzero(np.r_[True, pair_rows[1:] != pair_rows[:-1]])
    segment_lengths = np.diff(np.r_[segment_starts, pairs])
    single_rows = np.flatnonzero(segment_lengths == 1)
    multi_rows = np.flatnonzero(segment_lengths > 1)

    batch_min = np.empty((n, k), dtype=np.uint64)
    if track:
        batch_witness = np.empty((n, k), dtype=np.int64)
    if single_rows.size:
        single_pairs = segment_starts[single_rows]
        batch_min[single_rows] = hashed[pair_keys[single_pairs]]
        if track:
            batch_witness[single_rows] = unique_keys[pair_keys[single_pairs]][
                :, np.newaxis
            ]
    if multi_rows.size:
        # General path, compacted to the multi-pair rows only.
        sub = segment_lengths[pair_rows] > 1
        sub_rows = pair_rows[sub]
        sub_hashes = hashed[pair_keys[sub]]  # (sub_pairs, k)
        sub_starts = np.flatnonzero(np.r_[True, sub_rows[1:] != sub_rows[:-1]])
        multi_min = np.minimum.reduceat(sub_hashes, sub_starts, axis=0)
        batch_min[multi_rows] = multi_min
        if track:
            # Earliest arrival achieving each vertex's batch minimum:
            # mask non-achieving pairs to position 2m, take the segment
            # minimum of the first-arrival positions, and read the key
            # back out.  (Every (row, slot) minimum is achieved by some
            # pair of its segment, so the sentinel never survives.)
            position_dtype = np.uint32 if 2 * m < (1 << 32) - 1 else np.int64
            idx_in_multi = np.cumsum(np.r_[0, sub_rows[1:] != sub_rows[:-1]])
            achieved = sub_hashes == multi_min[idx_in_multi]
            positions = np.where(
                achieved,
                first_arrival[sub][:, np.newaxis].astype(position_dtype),
                position_dtype(2 * m),
            )
            first_position = np.minimum.reduceat(positions, sub_starts, axis=0)
            batch_witness[multi_rows] = keys[first_position.astype(np.intp)]

    # Arrival counts per vertex: duplicates are idempotent on the slots
    # but still bump update_count, exactly like repeated scalar updates.
    arrivals = np.bincount(rows, minlength=n).tolist()

    table = predictor._sketches
    target_ids = unique_targets.tolist()
    sketches = [table.get(vertex) for vertex in target_ids]
    unseen_rows = [row for row, sketch in enumerate(sketches) if sketch is None]
    seen_rows = [row for row, sketch in enumerate(sketches) if sketch is not None]

    # Unseen vertices: the batch minimum *is* the sketch.  Each adopts a
    # row view of one batch-private gather per array — sibling sketches
    # share a base they never write across, and list() peels the rows
    # off in a single C pass.
    if unseen_rows:
        value_rows = list(batch_min[unseen_rows])
        witness_rows = list(batch_witness[unseen_rows]) if track else None
        for j, row in enumerate(unseen_rows):
            table[target_ids[row]] = KMinHash._adopt_arrays(
                bank,
                value_rows[j],
                witness_rows[j] if track else None,
                arrivals[row],
            )

    # Seen vertices: gather pre-batch state into packed matrices, merge
    # vectorized, and *swap* each changed sketch's arrays for row views
    # of the merged matrices (cheaper than per-row masked writebacks).
    # Only a *strict* improvement overwrites a slot (and its witness); a
    # batch minimum merely equalling the pre-batch value leaves the
    # pre-batch value and witness in place — the scalar
    # `hashes < values` rule.
    if seen_rows:
        seen_sketches = [sketches[row] for row in seen_rows]
        old_values = np.stack([sketch.values for sketch in seen_sketches])
        seen_min = batch_min[seen_rows]
        improved = seen_min < old_values
        changed_idx = np.flatnonzero(improved.any(axis=1))
        if changed_idx.size:
            new_values = np.minimum(seen_min, old_values, out=seen_min)
            changed_list = changed_idx.tolist()
            value_rows = list(new_values[changed_idx])
            if track:
                old_witnesses = np.stack(
                    [seen_sketches[i].witnesses for i in changed_list]
                )
                seen_witness = batch_witness[
                    np.asarray(seen_rows, dtype=np.intp)[changed_idx]
                ]
                witness_rows = list(
                    np.where(improved[changed_idx], seen_witness, old_witnesses)
                )
            for j, i in enumerate(changed_list):
                sketch = seen_sketches[i]
                sketch.values = value_rows[j]
                if track:
                    sketch.witnesses = witness_rows[j]
        for row, sketch in zip(seen_rows, seen_sketches):
            sketch.update_count += arrivals[row]

    predictor._degrees.increment_block(us, vs)
    return m


def apply_dynamic_block(predictor, us, vs, timestamps=None, op: str = "add") -> int:
    """Fold a homogeneous-op edge batch into a dynamic predictor.

    The deletion-tolerant counterpart of :func:`apply_edge_block`: the
    per-key state is a signed counter plus a last-seen time, so a batch
    reduces to one ``(count delta, max timestamp)`` pair per unique
    ``(target, key)`` arrival — ``np.unique`` groups the interleaved
    arrival sequence, ``np.bincount`` sums the deltas, and
    ``np.maximum.reduceat`` takes the per-pair timestamp maxima.  Counter
    addition commutes, so unlike the append-only kernel there is no
    witness tie-break to reproduce: the result equals the scalar loop
    for *any* arrival order.  ``op`` selects the delete path (``delta =
    -1`` per arrival); mixed-op batches must be split by the caller
    (the stream runner flushes pending spans on op changes).

    Validation happens up front — bad ids, self-loops, or non-finite
    timestamps reject the whole batch before any mutation.  Returns the
    number of edges applied.
    """
    if op not in ("add", "delete"):
        raise ConfigurationError(f"op must be 'add' or 'delete', got {op!r}")
    us, vs = coerce_edge_batch(us, vs)
    m = us.shape[0]
    ts = coerce_timestamp_batch(timestamps, m)
    if m == 0:
        return 0
    delta_sign = 1 if op == "add" else -1

    # Interleave exactly like the scalar loop: sketch(u) <- v, then
    # sketch(v) <- u, per edge, each carrying the edge's timestamp.
    targets = np.empty(2 * m, dtype=np.int64)
    keys = np.empty(2 * m, dtype=np.int64)
    times = np.empty(2 * m, dtype=np.float64)
    targets[0::2] = us
    targets[1::2] = vs
    keys[0::2] = vs
    keys[1::2] = us
    times[0::2] = ts
    times[1::2] = ts

    unique_targets, rows = np.unique(targets, return_inverse=True)
    unique_keys, key_inverse = np.unique(keys, return_inverse=True)
    key_count = unique_keys.shape[0]

    # Group arrivals by (target, key); counts sum and timestamps max
    # within each group, giving one apply_delta call per unique pair.
    codes = rows * np.int64(key_count) + key_inverse
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    sorted_times = times[order]
    starts = np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])
    group_codes = sorted_codes[starts]
    group_ops = np.diff(np.r_[starts, sorted_codes.shape[0]])
    group_times = np.maximum.reduceat(sorted_times, starts)
    group_targets = unique_targets[group_codes // key_count].tolist()
    group_keys = unique_keys[group_codes % key_count].tolist()

    sketch_of = predictor._sketch_of
    sketch = None
    last_target = None
    for target, key, ops, stamp in zip(
        group_targets, group_keys, group_ops.tolist(), group_times.tolist()
    ):
        if target != last_target:
            sketch = sketch_of(target)
            last_target = target
        sketch.apply_delta(key, delta_sign * ops, stamp, ops=ops)
    predictor._observe_time(float(ts.max()))
    return m
