"""Configuration for the sketch-based predictors.

One frozen dataclass gathers every knob the paper's method exposes, with
eager validation (a bad configuration must fail at construction, before
any stream has been consumed) and the accuracy-planning helpers that
turn the Hoeffding guarantee into concrete parameter choices:

    k slots  ⇒  P[|Ĵ - J| ≥ ε] ≤ 2·exp(-2kε²)

so ``k = ln(2/δ) / (2ε²)`` suffices for ε-accuracy with probability
1-δ — the "theoretical accuracy guarantee" the abstract advertises,
checked empirically by experiment E10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = ["SketchConfig", "required_k", "hoeffding_epsilon", "hoeffding_failure_probability"]

_DEGREE_MODES = ("exact", "countmin")
_WEIGHT_POLICIES = ("freeze", "refresh")


def required_k(epsilon: float, delta: float) -> int:
    """Smallest sketch size guaranteeing ``P[|Ĵ-J| ≥ ε] ≤ δ``.

    From the Hoeffding bound on the mean of k i.i.d. indicator
    variables: ``k = ceil(ln(2/δ) / (2 ε²))``.
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def hoeffding_epsilon(k: int, delta: float) -> float:
    """The ε guaranteed at sketch size ``k`` with failure probability δ:
    ``ε = sqrt(ln(2/δ) / (2k))``."""
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * k))


def hoeffding_failure_probability(k: int, epsilon: float) -> float:
    """The bound ``2·exp(-2kε²)`` itself (may exceed 1 for tiny k·ε²)."""
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return min(1.0, 2.0 * math.exp(-2.0 * k * epsilon * epsilon))


@dataclass(frozen=True)
class SketchConfig:
    """Parameters of the MinHash-family predictors.

    Attributes
    ----------
    k:
        Slots per vertex sketch.  Space per vertex is ``16k`` bytes with
        witness tracking (``8k`` without); Jaccard error decays as
        ``1/sqrt(k)``.
    seed:
        Master seed; fully determines every hash function and therefore
        the entire predictor state for a given stream.
    track_witnesses:
        Keep per-slot argmin ids (required for Adamic–Adar / resource
        allocation; default True).
    degree_mode:
        ``"exact"`` — one exact counter per vertex (default, and the
        paper's setting); ``"countmin"`` — approximate degrees in a
        fixed-size Count-Min table (DESIGN.md ablation 3).
    countmin_width / countmin_depth:
        Count-Min dimensions for ``degree_mode="countmin"``.
    weight_policy:
        Biased predictor only: ``"freeze"`` (weight at edge arrival) or
        ``"refresh"`` (rebuild from a bounded buffer; see
        :mod:`repro.core.biased`).
    refresh_buffer:
        Biased/refresh only: per-vertex neighbor buffer capacity.
    dynamic_mode:
        Build the deletion-tolerant predictor
        (:class:`~repro.core.dynamic.DynamicMinHashPredictor`): edges
        can be retracted and, with a ``ttl``, expire.  Costs
        counter-backed state per live neighbor instead of flat ``O(k)``
        per vertex.
    ttl:
        Dynamic mode only: a neighbor with no activity for more than
        ``ttl`` stream-time units (measured against the stream's
        high-water timestamp, never a wall clock) stops counting toward
        sketches and degrees.  ``0`` disables expiry.
    """

    k: int = 128
    seed: int = 0
    track_witnesses: bool = True
    degree_mode: str = "exact"
    countmin_width: int = 1 << 14
    countmin_depth: int = 4
    weight_policy: str = "freeze"
    refresh_buffer: int = 256
    dynamic_mode: bool = False
    ttl: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.degree_mode not in _DEGREE_MODES:
            raise ConfigurationError(
                f"degree_mode must be one of {_DEGREE_MODES}, got {self.degree_mode!r}"
            )
        if not (math.isfinite(self.ttl) and self.ttl >= 0):
            raise ConfigurationError(
                f"ttl must be finite and non-negative, got {self.ttl}"
            )
        if self.ttl > 0 and not self.dynamic_mode:
            raise ConfigurationError(
                "ttl requires dynamic_mode=True (append-only sketches "
                "cannot expire edges)"
            )
        if self.dynamic_mode and self.degree_mode != "exact":
            raise ConfigurationError(
                "dynamic_mode derives degrees from live neighbor counts and "
                f"requires degree_mode='exact', got {self.degree_mode!r}"
            )
        if self.weight_policy not in _WEIGHT_POLICIES:
            raise ConfigurationError(
                f"weight_policy must be one of {_WEIGHT_POLICIES}, "
                f"got {self.weight_policy!r}"
            )
        if self.countmin_width < 1 or self.countmin_depth < 1:
            raise ConfigurationError(
                "countmin dimensions must be positive, got "
                f"{self.countmin_width}x{self.countmin_depth}"
            )
        if self.refresh_buffer < 1:
            raise ConfigurationError(
                f"refresh_buffer must be positive, got {self.refresh_buffer}"
            )

    def require_mergeable(self) -> None:
        """Validate that predictors built from this configuration can be
        merged (the shard-reduce step of parallel ingestion).

        MinHash sketches merge exactly for any configuration, so the
        only obstruction is the degree tracker: conservative Count-Min
        tables are not linear (the row minima of two halves do not
        reconstruct the whole), hence ``degree_mode="countmin"`` refuses.
        Raises :class:`~repro.errors.ConfigurationError`; returns
        ``None`` when sharding is safe.
        """
        if self.degree_mode != "exact":
            raise ConfigurationError(
                "sharded/merged ingestion requires degree_mode='exact'; "
                "conservative Count-Min degree tables are not mergeable "
                f"(got degree_mode={self.degree_mode!r})"
            )

    @classmethod
    def for_accuracy(cls, epsilon: float, delta: float = 0.05, **overrides) -> "SketchConfig":
        """Configuration sized from an accuracy target.

        >>> SketchConfig.for_accuracy(0.1, 0.05).k
        185
        """
        return cls(k=required_k(epsilon, delta), **overrides)

    def with_k(self, k: int) -> "SketchConfig":
        """Copy of this config at a different sketch size (sweeps)."""
        return replace(self, k=k)

    def jaccard_epsilon(self, delta: float = 0.05) -> float:
        """The ε this configuration guarantees at failure probability δ."""
        return hoeffding_epsilon(self.k, delta)

    def bytes_per_vertex(self) -> int:
        """Nominal per-vertex sketch bytes (excluding the degree word)."""
        return self.k * (16 if self.track_witnesses else 8)
