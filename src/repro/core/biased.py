"""Vertex-biased streaming predictor for weighted-sum measures.

The uniform predictor estimates Adamic–Adar by uniformly sampling the
union and weighting matched witnesses — fine when witness weights are
flat, wasteful when they are skewed: most slots land on high-degree
witnesses that contribute almost nothing to ``Σ 1/ln d(w)``.  The
paper's *vertex-biased sampling* spends slots in proportion to the
weights instead.

Method.  Each vertex carries a
:class:`~repro.sketches.weighted_minhash.WeightedMinHash` of its
neighbors, where neighbor ``w`` is inserted with weight
``λ(w) = weight(d(w))`` (``1/ln d`` for Adamic–Adar).  By the
exponential-minimum identity (see the sketch's module docstring), for a
query pair ``(u, v)``::

    p := P[slot minima coincide] = Λ(N(u) ∩ N(v)) / Λ(N(u) ∪ N(v))

where ``Λ(S) = Σ_{w∈S} λ(w)``.  The sketches also maintain the running
sums ``Λ(N(u))``, and inclusion–exclusion gives
``Λ(∪) = Λ(u) + Λ(v) − Λ(∩)``; solving::

    AA(u, v) = Λ(∩) = p · (Λ(u) + Λ(v)) / (1 + p)

— structurally the same plug-in as the uniform CN estimator, but every
slot now carries weight-proportional information, cutting variance on
skewed graphs (experiment E9 measures the factor).

Weight drift (the honest reconstruction caveat from DESIGN.md):
``d(w)`` keeps growing after ``w`` was sketched, so ``λ`` drifts
downward over time.  Two policies:

* ``freeze`` — insert at arrival-time weight, never touch again.
  Truly constant space; biased by the drift between a witness's
  arrival-time and query-time degree.  The saving grace is that
  ``1/ln d`` is *flat* in ``d`` for large ``d``, so drift mostly
  matters for low-degree vertices.
* ``refresh`` — additionally buffer up to ``refresh_buffer`` neighbor
  ids per vertex; at query time, a vertex whose full neighborhood fits
  the buffer lazily rebuilds its sketch (and ``Λ``) from *current*
  degrees.  Hubs overflow the buffer and fall back to freeze — exactly
  the regime where freezing is harmless (see above), making this the
  "hybrid" policy DESIGN.md describes.  Extra space: at most
  ``8 · refresh_buffer`` bytes per vertex, still constant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import SketchConfig
from repro.core.degrees import ExactDegrees
from repro.errors import ConfigurationError
from repro.exact.measures import Measure, measure_by_name
from repro.hashing import HashBank
from repro.interface import LinkPredictor
from repro.sketches.weighted_minhash import WeightedMinHash

__all__ = ["BiasedMinHashLinkPredictor"]


class BiasedMinHashLinkPredictor(LinkPredictor):
    """Weighted-MinHash streaming estimator of one witness-sum measure.

    Parameters
    ----------
    config:
        Sketch parameters; ``weight_policy`` selects freeze vs refresh
        (see module docstring).  Exact degrees are required — weights
        are functions of degrees.
    measure_name:
        The witness-sum measure this predictor is specialised for
        (default ``"adamic_adar"``).  :meth:`score` answers this measure
        and ``preferential_attachment`` (free from degrees); other
        measures raise — use
        :class:`~repro.core.predictor.MinHashLinkPredictor` for the full
        registry.
    """

    method_name = "biased_minhash"

    __slots__ = (
        "config",
        "measure",
        "_weight",
        "bank",
        "_sketches",
        "_degrees",
        "_buffers",
        "_rebuilt_at",
        "_clock",
    )

    def __init__(
        self,
        config: Optional[SketchConfig] = None,
        measure_name: str = "adamic_adar",
    ) -> None:
        self.config = config or SketchConfig()
        if self.config.degree_mode != "exact":
            raise ConfigurationError(
                "the biased predictor requires exact degrees "
                "(weights are functions of degrees); got degree_mode="
                f"{self.config.degree_mode!r}"
            )
        measure = measure_by_name(measure_name)
        if measure.kind != "witness_sum":
            raise ConfigurationError(
                "the biased predictor targets witness-sum measures; "
                f"{measure_name!r} is of kind {measure.kind!r}"
            )
        self.measure: Measure = measure
        self._weight: Callable[[int], float] = measure.witness_weight  # type: ignore[assignment]
        self.bank = HashBank(self.config.seed ^ 0xB1A5ED, self.config.k)
        self._sketches: Dict[int, WeightedMinHash] = {}
        self._degrees = ExactDegrees()
        # refresh policy state; None values mark overflowed (hub) buffers.
        self._buffers: Dict[int, Optional[List[int]]] = {}
        self._rebuilt_at: Dict[int, int] = {}
        self._clock = 0  # stream position, drives rebuild staleness

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _sketch_of(self, vertex: int) -> WeightedMinHash:
        sketch = self._sketches.get(vertex)
        if sketch is None:
            sketch = WeightedMinHash(self.bank)
            self._sketches[vertex] = sketch
        return sketch

    def _buffer_append(self, vertex: int, neighbor: int) -> None:
        buffer = self._buffers.get(vertex, [])
        if buffer is None:
            return  # already overflowed: hub, frozen forever
        buffer.append(neighbor)
        if len(buffer) > self.config.refresh_buffer:
            self._buffers[vertex] = None  # overflow: drop to bound memory
        else:
            self._buffers[vertex] = buffer

    def update(self, u: int, v: int) -> None:
        """Consume one stream edge.

        Each endpoint is inserted into the other's weighted sketch at
        its *current* (post-increment) degree weight.
        """
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        self._clock += 1
        self._degrees.increment(u)
        self._degrees.increment(v)
        self._sketch_of(u).update(v, self._weight(self._degrees.get(v)))
        self._sketch_of(v).update(u, self._weight(self._degrees.get(u)))
        if self.config.weight_policy == "refresh":
            self._buffer_append(u, v)
            self._buffer_append(v, u)

    # ------------------------------------------------------------------
    # Refresh policy
    # ------------------------------------------------------------------

    def _refreshed_sketch(self, vertex: int) -> WeightedMinHash:
        """The vertex's sketch, lazily rebuilt at current weights when
        the refresh policy applies and the full neighborhood is buffered."""
        sketch = self._sketches[vertex]
        if self.config.weight_policy != "refresh":
            return sketch
        buffer = self._buffers.get(vertex)
        if buffer is None:
            return sketch  # hub: frozen (λ drift negligible there)
        if self._rebuilt_at.get(vertex) == self._clock:
            return self._sketches[vertex]
        rebuilt = WeightedMinHash(self.bank)
        for neighbor in buffer:
            rebuilt.update(neighbor, self._weight(self._degrees.get(neighbor)))
        self._sketches[vertex] = rebuilt
        self._rebuilt_at[vertex] = self._clock
        return rebuilt

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def degree(self, vertex: int) -> int:
        return self._degrees.get(vertex)

    @property
    def vertex_count(self) -> int:
        """Number of vertices currently sketched."""
        return len(self._sketches)

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Estimate the configured measure: ``p·(Λu+Λv)/(1+p)``.

        Also answers ``preferential_attachment`` (degrees only).  Any
        other measure raises :class:`ConfigurationError` pointing at the
        uniform predictor.
        """
        measure = measure_by_name(measure_name)
        if measure.kind == "degree_product":
            return float(self.degree(u) * self.degree(v))
        if measure.name != self.measure.name:
            raise ConfigurationError(
                f"this biased predictor is specialised for "
                f"{self.measure.name!r}; use MinHashLinkPredictor for "
                f"{measure_name!r}"
            )
        if u not in self._sketches or v not in self._sketches:
            return 0.0
        su = self._refreshed_sketch(u)
        sv = self._refreshed_sketch(v)
        p = su.match_fraction(sv)
        if p <= 0.0:
            return 0.0
        estimate = p * (su.weight_sum + sv.weight_sum) / (1.0 + p)
        # Λ(∩) can exceed neither side's total weight.
        return min(estimate, su.weight_sum, sv.weight_sum)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def nominal_bytes(self) -> int:
        sketch_bytes = sum(s.nominal_bytes() for s in self._sketches.values())
        buffer_bytes = sum(
            8 * len(buffer)
            for buffer in self._buffers.values()
            if buffer is not None
        )
        return sketch_bytes + buffer_bytes + self._degrees.nominal_bytes()

    def __repr__(self) -> str:
        return (
            f"BiasedMinHashLinkPredictor(k={self.config.k}, "
            f"measure={self.measure.name!r}, "
            f"policy={self.config.weight_policy!r}, "
            f"vertices={len(self._sketches)})"
        )
