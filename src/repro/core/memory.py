"""Memory accounting across predictor methods (experiment E2).

Two honesty levels:

* **Nominal bytes** — the packed C-struct size every component reports
  through ``nominal_bytes()``.  This is the figure the paper's cost
  model counts and the one used for equal-space comparisons, because it
  is implementation-language-independent.
* **Measured bytes** — recursive :func:`sys.getsizeof` over the live
  Python objects, reported alongside so nobody mistakes interpreter
  overhead for algorithmic space.

:func:`memory_report` produces both for any
:class:`~repro.interface.LinkPredictor`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Set

import numpy as np

from repro.interface import LinkPredictor

__all__ = ["MemoryReport", "memory_report", "deep_getsizeof"]


@dataclass(frozen=True)
class MemoryReport:
    """Space accounting for one predictor at one stream position."""

    method: str
    vertices: int
    nominal_bytes: int
    measured_bytes: int

    @property
    def nominal_bytes_per_vertex(self) -> float:
        """Nominal bytes per sketched vertex (the paper's unit)."""
        return self.nominal_bytes / self.vertices if self.vertices else 0.0

    @property
    def interpreter_overhead(self) -> float:
        """Measured/nominal ratio — pure-Python bookkeeping cost."""
        return self.measured_bytes / self.nominal_bytes if self.nominal_bytes else 0.0

    def row(self) -> str:
        """One formatted table row (used by the E2 bench printer)."""
        return (
            f"{self.method:<20} {self.vertices:>9} "
            f"{self.nominal_bytes:>14,} {self.nominal_bytes_per_vertex:>10.1f} "
            f"{self.measured_bytes:>14,}"
        )


def deep_getsizeof(obj: Any, _seen: Set[int] | None = None) -> int:
    """Recursive ``sys.getsizeof`` with cycle protection.

    Handles the container types the predictors actually use (dict, set,
    list, tuple, numpy arrays, objects with ``__dict__``/``__slots__``);
    shared objects (e.g. the hash bank) are counted once.
    """
    if _seen is None:
        _seen = set()
    identity = id(obj)
    if identity in _seen:
        return 0
    _seen.add(identity)
    if isinstance(obj, np.ndarray):
        # getsizeof of an owning array already includes its buffer; a
        # view's buffer is charged to its owner (counted via _seen).
        return int(sys.getsizeof(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            deep_getsizeof(k, _seen) + deep_getsizeof(v, _seen) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_getsizeof(item, _seen) for item in obj)
    else:
        if hasattr(obj, "__dict__"):
            size += deep_getsizeof(vars(obj), _seen)
        slots = getattr(type(obj), "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += deep_getsizeof(getattr(obj, slot), _seen)
    return size


def memory_report(predictor: LinkPredictor) -> MemoryReport:
    """Build a :class:`MemoryReport` for the predictor's current state."""
    vertices = getattr(predictor, "vertex_count", None)
    if vertices is None:
        # Fall back to the degree table size exposed by all methods.
        degrees = getattr(predictor, "_degrees", None)
        vertices = len(degrees) if degrees is not None and hasattr(degrees, "__len__") else 0
    return MemoryReport(
        method=predictor.method_name,
        vertices=int(vertices),
        nominal_bytes=predictor.nominal_bytes(),
        measured_bytes=deep_getsizeof(predictor),
    )
