"""Temporal train/test splitting for link-prediction evaluation.

The standard streaming protocol (and the one real deployments face):
feed the predictor the first ``train_fraction`` of the stream in arrival
order, then ask it to predict which *future* edges will appear among the
already-known vertices.

:func:`temporal_split` cuts the stream; :func:`prediction_positives`
extracts the legal positive pairs from the held-out future: an edge
counts only if both endpoints were seen during training (a predictor
cannot be asked about vertices it has never observed) and the pair was
not already connected (otherwise there is nothing to predict).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stream import Edge

__all__ = ["temporal_split", "prediction_positives"]


def temporal_split(
    edges: Sequence[Edge], train_fraction: float
) -> Tuple[List[Edge], List[Edge]]:
    """Split a stream at a time cut: first ``train_fraction`` vs rest.

    The input must already be in arrival order (all library streams
    are).  Fractions outside ``(0, 1)`` raise
    :class:`~repro.errors.EvaluationError`.
    """
    if not 0.0 < train_fraction < 1.0:
        raise EvaluationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    if not edges:
        raise EvaluationError("cannot split an empty stream")
    cut = int(len(edges) * train_fraction)
    cut = max(1, min(cut, len(edges) - 1))  # both sides non-empty
    return list(edges[:cut]), list(edges[cut:])


def prediction_positives(
    train_graph: AdjacencyGraph, test_edges: Sequence[Edge]
) -> List[Tuple[int, int]]:
    """The future edges a predictor can legitimately be scored on.

    Keeps test edges whose endpoints both exist in the training graph
    and that are not already training edges; deduplicates and
    canonicalises to ``(min, max)``.
    """
    positives: Set[Tuple[int, int]] = set()
    for edge in test_edges:
        u, v = (edge.u, edge.v) if edge.u < edge.v else (edge.v, edge.u)
        if u == v:
            continue
        if u not in train_graph or v not in train_graph:
            continue
        if train_graph.has_edge(u, v):
            continue
        positives.add((u, v))
    return sorted(positives)
