"""Candidate-pair samplers for accuracy and ranking experiments.

Two kinds of pair populations matter:

* **Accuracy studies** (E3, E6, E9) need pairs where the true measures
  are *non-trivial* — uniformly random pairs in a sparse graph almost
  never share a neighbor, making relative error meaningless.
  :func:`sample_two_hop_pairs` draws pairs at graph distance two
  (guaranteed ``CN >= 1``) via a degree-weighted walk, the natural
  query distribution of a "who should connect next" workload.
* **Ranking studies** (E7) need positives (held-out future edges) mixed
  with hard negatives.  :func:`sample_negative_pairs` draws non-adjacent
  pairs, two-hop by default so the negatives are not trivially
  separable by CN > 0.

All samplers are seeded and deduplicate pairs; they raise
:class:`~repro.errors.EvaluationError` when the graph cannot supply the
requested population (e.g. a forest has too few two-hop pairs).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.graph.adjacency import AdjacencyGraph

__all__ = ["sample_two_hop_pairs", "sample_random_pairs", "sample_negative_pairs"]

_MAX_ATTEMPT_FACTOR = 200


def _canonical(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def sample_two_hop_pairs(
    graph: AdjacencyGraph,
    count: int,
    seed: int = 0,
    require_non_adjacent: bool = True,
) -> List[Tuple[int, int]]:
    """Sample distinct pairs at graph distance two.

    Walk: uniform vertex ``u`` (among non-isolated vertices), uniform
    neighbor ``w``, uniform neighbor ``v`` of ``w``; keep if ``v ≠ u``
    (and, by default, ``{u,v}`` is not an edge — candidates for *new*
    links).  Every kept pair shares at least the witness ``w``.
    """
    vertices = [v for v in graph.vertices() if graph.degree(v) > 0]
    if len(vertices) < 3:
        raise EvaluationError("graph too small to sample two-hop pairs")
    rng = random.Random(seed)
    pairs: Set[Tuple[int, int]] = set()
    attempts = 0
    limit = _MAX_ATTEMPT_FACTOR * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > limit:
            raise EvaluationError(
                f"could not find {count} two-hop pairs after {limit} attempts "
                f"(found {len(pairs)}); the graph may be too sparse"
            )
        u = rng.choice(vertices)
        w = rng.choice(tuple(graph.neighbors(u)))
        v = rng.choice(tuple(graph.neighbors(w)))
        if v == u:
            continue
        if require_non_adjacent and graph.has_edge(u, v):
            continue
        pairs.add(_canonical(u, v))
    return sorted(pairs)


def sample_random_pairs(
    graph: AdjacencyGraph, count: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """Sample distinct uniformly random non-adjacent vertex pairs."""
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise EvaluationError("graph too small to sample pairs")
    rng = random.Random(seed)
    pairs: Set[Tuple[int, int]] = set()
    attempts = 0
    limit = _MAX_ATTEMPT_FACTOR * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > limit:
            raise EvaluationError(
                f"could not find {count} random non-adjacent pairs "
                f"after {limit} attempts"
            )
        u, v = rng.sample(vertices, 2)
        if graph.has_edge(u, v):
            continue
        pairs.add(_canonical(u, v))
    return sorted(pairs)


def sample_negative_pairs(
    graph: AdjacencyGraph,
    positives: Sequence[Tuple[int, int]],
    ratio: float = 1.0,
    seed: int = 0,
    hard: bool = True,
) -> List[Tuple[int, int]]:
    """Negatives for a ranking study: non-edges disjoint from ``positives``.

    ``hard=True`` draws two-hop non-edges (share >= 1 neighbor, so the
    ranking task is non-trivial); ``hard=False`` draws uniform
    non-edges.  Returns ``ceil(ratio * len(positives))`` pairs.
    """
    if ratio <= 0:
        raise EvaluationError(f"ratio must be positive, got {ratio}")
    needed = int(ratio * len(positives) + 0.999999)
    forbidden = {(min(u, v), max(u, v)) for u, v in positives}
    sampler = sample_two_hop_pairs if hard else sample_random_pairs
    # Oversample, then reject pairs that collide with positives.
    negatives: List[Tuple[int, int]] = []
    attempt_seed = seed
    while len(negatives) < needed:
        batch = sampler(graph, needed + len(forbidden), seed=attempt_seed)
        for pair in batch:
            if pair not in forbidden:
                forbidden.add(pair)
                negatives.append(pair)
                if len(negatives) == needed:
                    break
        attempt_seed += 1
        if attempt_seed - seed > 50:
            raise EvaluationError(
                f"could not assemble {needed} negatives disjoint from the "
                f"positives (have {len(negatives)})"
            )
    return negatives
