"""Plain-text tables and series for experiment output.

Every benchmark prints its result in the same two shapes the paper's
evaluation section uses — tables (one row per dataset/method) and
series (one ``x -> y`` line per curve of a figure) — so the console
output maps one-to-one onto the tables/figures recorded in
EXPERIMENTS.md.  No plotting dependency: the series format *is* the
figure, machine-diffable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import EvaluationError

__all__ = ["format_table", "format_series", "format_cell", "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 4) -> str:
    """Render one table cell: floats at fixed significant precision,
    integers with thousands separators, strings verbatim."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 10000 or magnitude < 0.001):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table.

    Column widths adapt to content; numeric cells right-align, text
    cells left-align.  Raises on ragged rows — a ragged experiment
    table is always a bug worth failing loudly on.
    """
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise EvaluationError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    rendered: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    numeric = [
        all(isinstance(row[col], (int, float)) for row in rows) if rows else False
        for col in range(len(headers))
    ]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered)) if rendered else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            parts.append(cell.rjust(widths[col]) if numeric[col] else cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric sequence as a unicode block sparkline.

    Values scale linearly into eight block heights between the
    sequence's min and max (a constant sequence renders mid-height).
    NaNs render as spaces.  Used by the progressive experiments to give
    each checkpoint series an at-a-glance shape next to the table.

    >>> sparkline([1, 2, 3, 2, 1])
    '▁▄█▄▁'
    """
    if not values:
        raise EvaluationError("sparkline needs at least one value")
    finite = [v for v in values if v == v]
    if not finite:
        return " " * len(values)
    low = min(finite)
    span = max(finite) - low
    cells: List[str] = []
    for value in values:
        if value != value:  # NaN
            cells.append(" ")
        elif span == 0:
            cells.append(_SPARK_BLOCKS[3])
        else:
            index = int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
            cells.append(_SPARK_BLOCKS[index])
    return "".join(cells)


def format_series(
    title: str,
    x_label: str,
    curves: Dict[str, List[Tuple[Cell, Cell]]],
    precision: int = 4,
) -> str:
    """Render a figure as aligned ``x -> y`` columns, one per curve.

    All curves must share the same x grid (that is what makes them one
    figure); a mismatch raises.
    """
    if not curves:
        raise EvaluationError("a series needs at least one curve")
    names = list(curves)
    grid = [x for x, _ in curves[names[0]]]
    for name in names[1:]:
        other = [x for x, _ in curves[name]]
        if other != grid:
            raise EvaluationError(
                f"curve {name!r} has x grid {other}, expected {grid}"
            )
    headers = [x_label] + names
    rows: List[List[Cell]] = []
    for index, x in enumerate(grid):
        rows.append([x] + [curves[name][index][1] for name in names])
    return format_table(headers, rows, title=title, precision=precision)
