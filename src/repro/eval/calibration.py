"""Calibration of the sketch's self-reported uncertainty.

The predictor attaches a standard error to every Jaccard estimate
(``sqrt(Ĵ(1-Ĵ)/k)``, see :func:`repro.core.estimators.jaccard_std_error`).
An error bar is only useful if it is *calibrated*: the interval
``Ĵ ± z·σ̂`` should cover the true value about as often as the normal
approximation promises (68% at z=1, 95% at z≈1.96).

This module measures that coverage empirically against an exact oracle
— and provides a seed-sweep utility for estimating the *true* sampling
variance of any estimator by re-running it under independent hash
seeds, which the variance-reduction claims (E9) and the tests use as
ground truth for "how noisy is this estimator really?".

Caveat built into the design: the normal approximation degrades when
``k·J`` is small (few expected collisions — a binomial with a handful
of successes is skewed), so :func:`coverage_report` also buckets
coverage by the magnitude of Ĵ, making the degradation visible instead
of averaging it away.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.estimators import jaccard_std_error
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import EvaluationError
from repro.exact.oracle import ExactOracle
from repro.graph.stream import Edge
from repro.interface import LinkPredictor

__all__ = ["CoverageReport", "coverage_report", "seed_sweep"]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class CoverageReport:
    """Empirical coverage of ``Ĵ ± z·σ̂`` intervals.

    ``by_z`` maps each z level to the overall coverage fraction;
    ``by_magnitude`` maps a magnitude bucket label to the z=1.96
    coverage within that bucket (exposing the small-Ĵ degradation).
    """

    pairs: int
    by_z: Dict[float, float]
    by_magnitude: Dict[str, float]


def _magnitude_bucket(estimate: float, k: int) -> str:
    """Bucket by the expected collision count k·Ĵ, the quantity that
    governs normality of the estimator."""
    expected_collisions = k * estimate
    if expected_collisions < 5:
        return "kJ<5"
    if expected_collisions < 20:
        return "5<=kJ<20"
    return "kJ>=20"


def coverage_report(
    predictor: MinHashLinkPredictor,
    oracle: ExactOracle,
    pairs: Sequence[Pair],
    z_levels: Sequence[float] = (1.0, 1.96, 3.0),
) -> CoverageReport:
    """Measure how often ``Ĵ ± z·σ̂`` covers the exact Jaccard."""
    if not pairs:
        raise EvaluationError("need at least one pair to measure coverage")
    k = predictor.config.k
    hits: Dict[float, int] = {z: 0 for z in z_levels}
    bucket_hits: Dict[str, List[int]] = {}
    for u, v in pairs:
        estimate = predictor.jaccard(u, v)
        truth = oracle.score(u, v, "jaccard")
        sigma = jaccard_std_error(estimate, k)
        for z in z_levels:
            # A zero sigma (Ĵ at 0 or 1) still covers iff exact equality.
            if abs(estimate - truth) <= z * sigma or estimate == truth:
                hits[z] += 1
        bucket = _magnitude_bucket(estimate, k)
        covered = abs(estimate - truth) <= 1.96 * sigma or estimate == truth
        bucket_hits.setdefault(bucket, []).append(1 if covered else 0)
    return CoverageReport(
        pairs=len(pairs),
        by_z={z: hits[z] / len(pairs) for z in z_levels},
        by_magnitude={
            bucket: sum(values) / len(values)
            for bucket, values in sorted(bucket_hits.items())
        },
    )


def seed_sweep(
    predictor_factory: Callable[[int], LinkPredictor],
    stream: Sequence[Edge],
    pairs: Sequence[Pair],
    measure: str,
    seeds: Sequence[int],
) -> Dict[Pair, Tuple[float, float]]:
    """Per-pair (mean, std) of an estimator across independent seeds.

    ``predictor_factory(seed)`` must build a fresh predictor whose hash
    randomness is fully determined by ``seed``.  The returned standard
    deviations are the estimator's *true* sampling noise — the quantity
    self-reported error bars and variance-reduction claims are checked
    against.
    """
    if len(seeds) < 2:
        raise EvaluationError("seed_sweep needs at least two seeds")
    per_pair: Dict[Pair, List[float]] = {pair: [] for pair in pairs}
    for seed in seeds:
        predictor = predictor_factory(seed)
        predictor.process(stream)
        for pair in pairs:
            per_pair[pair].append(predictor.score(pair[0], pair[1], measure))
    result: Dict[Pair, Tuple[float, float]] = {}
    for pair, values in per_pair.items():
        result[pair] = (statistics.mean(values), statistics.stdev(values))
    return result
