"""Shared experiment machinery.

The benchmark harnesses in ``benchmarks/`` are thin: each wires a
dataset, a parameter grid and a printer around the reusable procedures
here.  Everything takes explicit seeds and returns plain data (dicts
and dataclasses), so experiments are reproducible and their outputs
diffable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import EvaluationError
from repro.eval import metrics
from repro.eval.candidates import sample_negative_pairs, sample_two_hop_pairs
from repro.eval.split import prediction_positives, temporal_split
from repro.exact.oracle import ExactOracle
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stream import Edge
from repro.interface import LinkPredictor

__all__ = [
    "IngestResult",
    "RankingResult",
    "score_pairs",
    "accuracy_profile",
    "timed_ingest",
    "timed_queries",
    "ranking_quality",
    "rank_agreement",
    "progressive_accuracy",
    "temporal_ranking_task",
]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of a timed stream ingestion."""

    edges: int
    seconds: float

    @property
    def edges_per_second(self) -> float:
        return self.edges / self.seconds if self.seconds > 0 else float("inf")


@dataclass(frozen=True)
class RankingResult:
    """Ranking quality of one method on one labelled pair population."""

    method: str
    measure: str
    auc: float
    precision: Dict[int, float]
    average_precision: float


def score_pairs(
    predictor: LinkPredictor, pairs: Sequence[Pair], measure: str
) -> List[float]:
    """Score every pair with one method/measure."""
    return [predictor.score(u, v, measure) for u, v in pairs]


def accuracy_profile(
    predictor: LinkPredictor,
    oracle: ExactOracle,
    pairs: Sequence[Pair],
    measures: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Error summary (MAE / RMSE / MRE) per measure against the oracle."""
    profile: Dict[str, Dict[str, float]] = {}
    for measure in measures:
        estimates = score_pairs(predictor, pairs, measure)
        truths = score_pairs(oracle, pairs, measure)
        profile[measure] = metrics.error_summary(estimates, truths)
    return profile


def timed_ingest(predictor: LinkPredictor, edges: Sequence[Edge]) -> IngestResult:
    """Feed a stream through a predictor under a wall clock."""
    start = time.perf_counter()
    count = predictor.process(edges)
    return IngestResult(edges=count, seconds=time.perf_counter() - start)


def timed_queries(
    predictor: LinkPredictor, pairs: Sequence[Pair], measure: str
) -> float:
    """Mean seconds per pairwise query."""
    if not pairs:
        raise EvaluationError("need at least one query pair to time")
    start = time.perf_counter()
    for u, v in pairs:
        predictor.score(u, v, measure)
    return (time.perf_counter() - start) / len(pairs)


def ranking_quality(
    predictor: LinkPredictor,
    positives: Sequence[Pair],
    negatives: Sequence[Pair],
    measure: str,
    precision_levels: Sequence[int] = (10, 50, 100),
) -> RankingResult:
    """AUC / precision@N / AP of one method on a labelled population."""
    pairs = list(positives) + list(negatives)
    labels = [1] * len(positives) + [0] * len(negatives)
    scores = score_pairs(predictor, pairs, measure)
    return RankingResult(
        method=predictor.method_name,
        measure=measure,
        auc=metrics.roc_auc(scores, labels),
        precision={
            n: metrics.precision_at(scores, labels, n)
            for n in precision_levels
            if n <= len(pairs)
        },
        average_precision=metrics.average_precision(scores, labels),
    )


def rank_agreement(
    predictor: LinkPredictor,
    oracle: ExactOracle,
    pairs: Sequence[Pair],
    measure: str,
) -> Dict[str, float]:
    """Kendall τ-b and Spearman ρ between estimated and exact rankings."""
    estimates = score_pairs(predictor, pairs, measure)
    truths = score_pairs(oracle, pairs, measure)
    return {
        "kendall_tau": metrics.kendall_tau(estimates, truths),
        "spearman_rho": metrics.spearman_rho(estimates, truths),
    }


def progressive_accuracy(
    predictor_factory: Callable[[], LinkPredictor],
    edges: Sequence[Edge],
    checkpoint_count: int,
    pairs_per_checkpoint: int,
    measures: Sequence[str],
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Accuracy measured at evenly spaced points along the stream (E6).

    Runs the predictor and an exact oracle in lockstep; at each
    checkpoint, samples fresh two-hop pairs from the *current* graph and
    records each measure's mean relative error.  Returns one row per
    checkpoint: ``{"edges": n, "<measure>": mre, ...}``.
    """
    if checkpoint_count < 1:
        raise EvaluationError(
            f"checkpoint_count must be positive, got {checkpoint_count}"
        )
    predictor = predictor_factory()
    oracle = ExactOracle()
    interval = max(1, len(edges) // checkpoint_count)
    rows: List[Dict[str, object]] = []
    for index, edge in enumerate(edges, start=1):
        predictor.update(edge.u, edge.v)
        oracle.update(edge.u, edge.v)
        if index % interval == 0 or index == len(edges):
            pairs = sample_two_hop_pairs(
                oracle.graph, pairs_per_checkpoint, seed=seed + index
            )
            row: Dict[str, object] = {"edges": index}
            profile = accuracy_profile(predictor, oracle, pairs, measures)
            for measure in measures:
                row[measure] = profile[measure]["mre"]
            rows.append(row)
    return rows


def temporal_ranking_task(
    edges: Sequence[Edge],
    train_fraction: float = 0.7,
    negative_ratio: float = 1.0,
    max_positives: int = 500,
    seed: int = 0,
    hard_negatives: bool = False,
) -> Tuple[List[Edge], List[Pair], List[Pair]]:
    """Build the E7 task: train stream, positive pairs, negative pairs.

    Splits temporally, extracts legal positives from the future,
    truncates to ``max_positives`` (deterministically — the earliest
    future edges, the ones an online system must predict first), and
    samples negatives from the training graph.  Negatives are uniform
    non-edges by default (the standard link-prediction protocol);
    ``hard_negatives=True`` draws two-hop non-edges instead, a strictly
    harder task on which even exact measures separate poorly — useful
    for stress studies, not for the headline E7 numbers.
    """
    train, test = temporal_split(edges, train_fraction)
    train_graph = AdjacencyGraph.from_edges(train)
    positives = prediction_positives(train_graph, test)[:max_positives]
    if not positives:
        raise EvaluationError(
            "no legal positives in the held-out future; lower train_fraction"
        )
    negatives = sample_negative_pairs(
        train_graph, positives, ratio=negative_ratio, seed=seed, hard=hard_negatives
    )
    return train, positives, negatives
