"""Evaluation harness: splits, candidate samplers, metrics, shared
experiment procedures, and plain-text reporting.

Benchmarks in ``benchmarks/`` compose these pieces; they are equally
usable directly for custom studies on user data.
"""

from repro.eval.calibration import CoverageReport, coverage_report, seed_sweep
from repro.eval.candidates import (
    sample_negative_pairs,
    sample_random_pairs,
    sample_two_hop_pairs,
)
from repro.eval.experiments import (
    IngestResult,
    RankingResult,
    accuracy_profile,
    progressive_accuracy,
    rank_agreement,
    ranking_quality,
    score_pairs,
    temporal_ranking_task,
    timed_ingest,
    timed_queries,
)
from repro.eval.metrics import (
    average_precision,
    error_summary,
    kendall_tau,
    mean_absolute_error,
    mean_relative_error,
    precision_at,
    recall_at,
    roc_auc,
    root_mean_square_error,
    spearman_rho,
)
from repro.eval.reporting import format_cell, format_series, format_table, sparkline
from repro.eval.split import prediction_positives, temporal_split
from repro.eval.sweeps import Sweep, SweepResults

__all__ = [
    "CoverageReport",
    "IngestResult",
    "RankingResult",
    "accuracy_profile",
    "coverage_report",
    "seed_sweep",
    "average_precision",
    "error_summary",
    "format_cell",
    "format_series",
    "format_table",
    "kendall_tau",
    "mean_absolute_error",
    "mean_relative_error",
    "precision_at",
    "prediction_positives",
    "progressive_accuracy",
    "rank_agreement",
    "ranking_quality",
    "recall_at",
    "roc_auc",
    "root_mean_square_error",
    "sample_negative_pairs",
    "sample_random_pairs",
    "sample_two_hop_pairs",
    "score_pairs",
    "sparkline",
    "spearman_rho",
    "Sweep",
    "SweepResults",
    "temporal_ranking_task",
    "temporal_split",
    "timed_ingest",
    "timed_queries",
]
