"""Evaluation metrics: estimation error and ranking quality.

Implemented from scratch (with the cross-checks against scipy living in
the test-suite, not here, so the library carries no scipy dependency):

* estimation error — mean absolute error, root-mean-square error, and
  the paper's headline *mean relative error* (restricted to pairs whose
  true value is positive, the convention that makes "relative" well
  defined);
* ranking quality — ROC AUC via the Mann–Whitney statistic with
  midrank tie handling, precision/recall at N, and average precision;
* rank agreement — Kendall's τ-b and Spearman's ρ between an estimated
  and an exact ranking, the statistic that answers "does the sketch
  *order* candidates like the exact measure would?" (experiment E7's
  second axis).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import EvaluationError

__all__ = [
    "mean_absolute_error",
    "root_mean_square_error",
    "mean_relative_error",
    "roc_auc",
    "precision_at",
    "recall_at",
    "average_precision",
    "kendall_tau",
    "spearman_rho",
    "error_summary",
]


def _check_paired(estimates: Sequence[float], truths: Sequence[float]) -> None:
    if len(estimates) != len(truths):
        raise EvaluationError(
            f"length mismatch: {len(estimates)} estimates vs {len(truths)} truths"
        )
    if not estimates:
        raise EvaluationError("need at least one (estimate, truth) pair")


def mean_absolute_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean of ``|estimate - truth|``."""
    _check_paired(estimates, truths)
    return sum(abs(e - t) for e, t in zip(estimates, truths)) / len(estimates)


def root_mean_square_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Square root of the mean squared error."""
    _check_paired(estimates, truths)
    return math.sqrt(
        sum((e - t) ** 2 for e, t in zip(estimates, truths)) / len(estimates)
    )


def mean_relative_error(
    estimates: Sequence[float], truths: Sequence[float]
) -> float:
    """Mean of ``|estimate - truth| / truth`` over pairs with truth > 0.

    The paper's headline accuracy metric.  Pairs whose true value is
    zero are skipped (relative error is undefined there; the absolute
    metrics cover them); if *every* truth is zero the metric is
    undefined and raises.
    """
    _check_paired(estimates, truths)
    errors = [abs(e - t) / t for e, t in zip(estimates, truths) if t > 0]
    if not errors:
        raise EvaluationError(
            "mean relative error undefined: every true value is zero"
        )
    return sum(errors) / len(errors)


# ----------------------------------------------------------------------
# Ranking quality
# ----------------------------------------------------------------------


def _midranks(values: Sequence[float]) -> List[float]:
    """Ranks 1..n with ties assigned their midrank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for position in range(i, j + 1):
            ranks[order[position]] = midrank
        i = j + 1
    return ranks


def roc_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """ROC AUC via the Mann–Whitney U statistic (midrank ties).

    ``labels`` are 0/1; equals the probability a random positive
    outranks a random negative (ties counting half).
    """
    if len(scores) != len(labels):
        raise EvaluationError(
            f"length mismatch: {len(scores)} scores vs {len(labels)} labels"
        )
    positives = sum(1 for label in labels if label)
    negatives = len(labels) - positives
    if positives == 0 or negatives == 0:
        raise EvaluationError(
            f"AUC needs both classes; got {positives} positives, "
            f"{negatives} negatives"
        )
    ranks = _midranks(scores)
    positive_rank_sum = sum(r for r, label in zip(ranks, labels) if label)
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def _ranked_labels(scores: Sequence[float], labels: Sequence[int]) -> List[int]:
    """Labels sorted by descending score (stable, ties by input order)."""
    if len(scores) != len(labels):
        raise EvaluationError(
            f"length mismatch: {len(scores)} scores vs {len(labels)} labels"
        )
    order = sorted(range(len(scores)), key=lambda i: -scores[i])
    return [labels[i] for i in order]


def precision_at(scores: Sequence[float], labels: Sequence[int], n: int) -> float:
    """Fraction of the top-``n`` scored items that are positive."""
    if n < 1:
        raise EvaluationError(f"n must be positive, got {n}")
    top = _ranked_labels(scores, labels)[:n]
    if not top:
        raise EvaluationError("no items to rank")
    return sum(top) / len(top)


def recall_at(scores: Sequence[float], labels: Sequence[int], n: int) -> float:
    """Fraction of all positives captured in the top ``n``."""
    if n < 1:
        raise EvaluationError(f"n must be positive, got {n}")
    total_positives = sum(labels)
    if total_positives == 0:
        raise EvaluationError("recall undefined without positives")
    top = _ranked_labels(scores, labels)[:n]
    return sum(top) / total_positives


def average_precision(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Mean of precision@rank over the ranks of the positives."""
    ranked = _ranked_labels(scores, labels)
    total_positives = sum(ranked)
    if total_positives == 0:
        raise EvaluationError("average precision undefined without positives")
    hits = 0
    precision_sum = 0.0
    for index, label in enumerate(ranked, start=1):
        if label:
            hits += 1
            precision_sum += hits / index
    return precision_sum / total_positives


# ----------------------------------------------------------------------
# Rank agreement
# ----------------------------------------------------------------------


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall's τ-b between two paired score lists (tie-corrected).

    O(n²) pair enumeration — evaluation pair sets are a few thousand
    items, where the quadratic cost is negligible next to scoring.
    """
    _check_paired(a, b)
    n = len(a)
    if n < 2:
        raise EvaluationError("kendall tau needs at least two items")
    concordant = discordant = ties_a = ties_b = 0
    for i in range(n):
        for j in range(i + 1, n):
            da = a[i] - a[j]
            db = b[i] - b[j]
            if da == 0 and db == 0:
                ties_a += 1
                ties_b += 1
            elif da == 0:
                ties_a += 1
            elif db == 0:
                ties_b += 1
            elif (da > 0) == (db > 0):
                concordant += 1
            else:
                discordant += 1
    total = n * (n - 1) // 2
    denominator = math.sqrt((total - ties_a) * (total - ties_b))
    if denominator == 0:
        raise EvaluationError("kendall tau undefined: a list is constant")
    return (concordant - discordant) / denominator


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson correlation of midranks)."""
    _check_paired(a, b)
    if len(a) < 2:
        raise EvaluationError("spearman rho needs at least two items")
    ranks_a = _midranks(a)
    ranks_b = _midranks(b)
    mean_a = sum(ranks_a) / len(ranks_a)
    mean_b = sum(ranks_b) / len(ranks_b)
    covariance = sum(
        (ra - mean_a) * (rb - mean_b) for ra, rb in zip(ranks_a, ranks_b)
    )
    variance_a = sum((ra - mean_a) ** 2 for ra in ranks_a)
    variance_b = sum((rb - mean_b) ** 2 for rb in ranks_b)
    if variance_a == 0 or variance_b == 0:
        raise EvaluationError("spearman rho undefined: a list is constant")
    return covariance / math.sqrt(variance_a * variance_b)


def error_summary(
    estimates: Sequence[float], truths: Sequence[float]
) -> Dict[str, float]:
    """All three error metrics in one dict (handles the all-zero-truth
    corner by reporting NaN for the relative metric)."""
    try:
        relative = mean_relative_error(estimates, truths)
    except EvaluationError:
        relative = float("nan")
    return {
        "mae": mean_absolute_error(estimates, truths),
        "rmse": root_mean_square_error(estimates, truths),
        "mre": relative,
    }
