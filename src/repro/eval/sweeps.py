"""Declarative parameter sweeps.

The evaluation section of any systems paper is a grid: a few factors
(sketch size, method, dataset), a procedure run at each grid point, and
a table/figure of the results.  :class:`Sweep` packages that pattern so
user studies stay declarative::

    sweep = Sweep(factors={"k": [32, 128, 512], "dataset": ["synth-grqc"]})
    results = sweep.run(lambda k, dataset: my_experiment(k, dataset))
    print(results.table(value_names=["mre"]))
    print(results.series(x="k", value="mre"))     # one curve per other-factor combo

The procedure returns either a float or a dict of named floats; results
are stored per grid point and rendered through the same reporters the
benchmarks use, so a user's custom sweep output is format-identical to
the repository's experiment records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConfigurationError, EvaluationError
from repro.eval.reporting import format_series, format_table

__all__ = ["Sweep", "SweepResults"]

Value = Union[float, Mapping[str, float]]


@dataclass(frozen=True)
class SweepResults:
    """Results of one sweep: factor names, grid points, and values."""

    factor_names: Tuple[str, ...]
    points: Tuple[Tuple[Any, ...], ...]
    values: Tuple[Dict[str, float], ...]

    def value_names(self) -> List[str]:
        """All value keys produced by the procedure, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.values:
            for name in record:
                seen.setdefault(name, None)
        return list(seen)

    def table(self, value_names: Sequence[str] | None = None, title: str = "") -> str:
        """All grid points as rows: factors first, then values."""
        names = list(value_names) if value_names is not None else self.value_names()
        headers = list(self.factor_names) + names
        rows = []
        for point, record in zip(self.points, self.values):
            rows.append(list(point) + [record.get(name, float("nan")) for name in names])
        return format_table(headers, rows, title=title)

    def series(self, x: str, value: str, title: str = "") -> str:
        """A figure: ``value`` against factor ``x``, one curve per
        combination of the remaining factors.

        Requires the grid to be complete in ``x`` for every combination
        (it is, when produced by :meth:`Sweep.run`).
        """
        if x not in self.factor_names:
            raise EvaluationError(
                f"{x!r} is not a factor (factors: {self.factor_names})"
            )
        x_index = self.factor_names.index(x)
        curves: Dict[str, List[Tuple[Any, Any]]] = {}
        for point, record in zip(self.points, self.values):
            rest = tuple(
                f"{name}={value_}"
                for i, (name, value_) in enumerate(zip(self.factor_names, point))
                if i != x_index
            )
            label = ", ".join(rest) if rest else value
            curves.setdefault(label, []).append(
                (point[x_index], record.get(value, float("nan")))
            )
        return format_series(title, x, curves)

    def best(self, value: str, minimize: bool = True) -> Tuple[Dict[str, Any], float]:
        """The grid point optimising one value; returns (factors, value)."""
        scored = [
            (record[value], point)
            for point, record in zip(self.points, self.values)
            if value in record
        ]
        if not scored:
            raise EvaluationError(f"no grid point produced value {value!r}")
        score, point = min(scored) if minimize else max(scored)
        return dict(zip(self.factor_names, point)), score


class Sweep(object):
    """A full-factorial grid of named factors.

    Parameters
    ----------
    factors:
        Mapping from factor name to its levels (non-empty sequences).
        The grid is the cartesian product, iterated with the *last*
        factor varying fastest (standard row-major order).
    """

    def __init__(self, factors: Mapping[str, Sequence[Any]]) -> None:
        if not factors:
            raise ConfigurationError("a sweep needs at least one factor")
        for name, levels in factors.items():
            if not levels:
                raise ConfigurationError(f"factor {name!r} has no levels")
        self.factors: Dict[str, Sequence[Any]] = dict(factors)

    def grid(self) -> List[Tuple[Any, ...]]:
        """All grid points in iteration order."""
        return list(itertools.product(*self.factors.values()))

    def __len__(self) -> int:
        size = 1
        for levels in self.factors.values():
            size *= len(levels)
        return size

    def run(
        self,
        procedure: Callable[..., Value],
        progress: Callable[[Dict[str, Any]], None] | None = None,
    ) -> SweepResults:
        """Run the procedure at every grid point.

        The procedure receives the factors as keyword arguments and
        returns a float (stored under ``"value"``) or a dict of named
        floats.  ``progress``, if given, is called with each point's
        factor dict before it runs (hook for logging).
        """
        names = tuple(self.factors)
        points: List[Tuple[Any, ...]] = []
        values: List[Dict[str, float]] = []
        for point in self.grid():
            kwargs = dict(zip(names, point))
            if progress is not None:
                progress(kwargs)
            result = procedure(**kwargs)
            if isinstance(result, Mapping):
                record = {str(k): float(v) for k, v in result.items()}
            else:
                record = {"value": float(result)}
            points.append(point)
            values.append(record)
        return SweepResults(
            factor_names=names, points=tuple(points), values=tuple(values)
        )
