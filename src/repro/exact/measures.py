"""The neighborhood-measure vocabulary, and exact computation.

The paper targets three measures — Jaccard, common neighbors and
Adamic–Adar — but all three (and several relatives) fit one small
algebra over the neighborhoods ``N(u), N(v)``:

* **overlap-ratio** measures are functions of ``|∩|`` and the two
  degrees (Jaccard, cosine, Sørensen, ...);
* **witness-sum** measures are ``Σ_{w ∈ N(u)∩N(v)} f(d(w))`` for a
  per-witness weight ``f`` of the witness's degree (common neighbors
  with ``f = 1``, Adamic–Adar with ``f = 1/ln d``, resource allocation
  with ``f = 1/d``);
* **degree-product** measures use the degrees alone (preferential
  attachment).

:class:`Measure` captures that classification declaratively.  The exact
functions here evaluate any measure on an
:class:`~repro.graph.adjacency.AdjacencyGraph`; the streaming estimators
in :mod:`repro.core.estimators` consume the *same* ``Measure`` objects,
so sketch and ground truth can never disagree about a definition.

Witness degrees in witness-sum measures are always at least 2 (a common
neighbor of ``u`` and ``v`` touches both), so ``1/ln d`` is finite for
every legal witness; the weight callables still guard ``d < 2`` because
the sketch side may consult *stale* degree tables in adversarial
streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.adjacency import AdjacencyGraph

__all__ = [
    "Measure",
    "JACCARD",
    "COSINE",
    "SORENSEN",
    "HUB_PROMOTED",
    "HUB_DEPRESSED",
    "LEICHT_HOLME_NEWMAN",
    "COMMON_NEIGHBORS",
    "ADAMIC_ADAR",
    "RESOURCE_ALLOCATION",
    "PREFERENTIAL_ATTACHMENT",
    "MEASURES",
    "measure_by_name",
    "adamic_adar_weight",
    "resource_allocation_weight",
    "exact_score",
    "jaccard",
    "common_neighbors",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
    "cosine",
    "sorensen",
]


def adamic_adar_weight(degree: int) -> float:
    """Adamic–Adar witness weight ``1 / ln(degree)``.

    Degrees below 2 cannot occur for true common neighbors; they are
    clamped to 2 so the weight stays finite if a caller feeds a stale
    degree (documented sketch-side possibility).
    """
    return 1.0 / math.log(max(degree, 2))


def resource_allocation_weight(degree: int) -> float:
    """Resource-allocation witness weight ``1 / degree`` (clamped >= 1)."""
    return 1.0 / max(degree, 1)


def _unit_weight(degree: int) -> float:
    """Weight 1 for every witness: plain common-neighbor counting."""
    return 1.0


@dataclass(frozen=True)
class Measure:
    """A link-prediction measure, classified for the estimator algebra.

    Attributes
    ----------
    name:
        Registry key (lower-snake-case).
    kind:
        ``"overlap_ratio"``, ``"witness_sum"`` or ``"degree_product"``.
    witness_weight:
        For witness-sum measures: the per-witness weight as a function
        of the witness degree.  None otherwise.
    ratio:
        For overlap-ratio measures: ``(intersection, d_u, d_v) ->
        score``.  None otherwise.
    """

    name: str
    kind: str
    witness_weight: Optional[Callable[[int], float]] = None
    ratio: Optional[Callable[[float, int, int], float]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("overlap_ratio", "witness_sum", "degree_product"):
            raise ConfigurationError(f"unknown measure kind {self.kind!r}")
        if self.kind == "witness_sum" and self.witness_weight is None:
            raise ConfigurationError(f"measure {self.name!r} needs a witness_weight")
        if self.kind == "overlap_ratio" and self.ratio is None:
            raise ConfigurationError(f"measure {self.name!r} needs a ratio function")


def _jaccard_ratio(intersection: float, du: int, dv: int) -> float:
    union = du + dv - intersection
    return intersection / union if union > 0 else 0.0


def _cosine_ratio(intersection: float, du: int, dv: int) -> float:
    if du == 0 or dv == 0:
        return 0.0
    return intersection / math.sqrt(du * dv)


def _sorensen_ratio(intersection: float, du: int, dv: int) -> float:
    if du + dv == 0:
        return 0.0
    return 2.0 * intersection / (du + dv)


def _hub_promoted_ratio(intersection: float, du: int, dv: int) -> float:
    smaller = min(du, dv)
    return intersection / smaller if smaller > 0 else 0.0


def _hub_depressed_ratio(intersection: float, du: int, dv: int) -> float:
    larger = max(du, dv)
    return intersection / larger if larger > 0 else 0.0


def _lhn_ratio(intersection: float, du: int, dv: int) -> float:
    # Leicht–Holme–Newman: overlap normalised by the expectation under
    # the configuration model, |∩| / (d(u)·d(v)).
    if du == 0 or dv == 0:
        return 0.0
    return intersection / (du * dv)


JACCARD = Measure("jaccard", "overlap_ratio", ratio=_jaccard_ratio)
COSINE = Measure("cosine", "overlap_ratio", ratio=_cosine_ratio)
SORENSEN = Measure("sorensen", "overlap_ratio", ratio=_sorensen_ratio)
HUB_PROMOTED = Measure("hub_promoted", "overlap_ratio", ratio=_hub_promoted_ratio)
HUB_DEPRESSED = Measure("hub_depressed", "overlap_ratio", ratio=_hub_depressed_ratio)
LEICHT_HOLME_NEWMAN = Measure("leicht_holme_newman", "overlap_ratio", ratio=_lhn_ratio)
COMMON_NEIGHBORS = Measure("common_neighbors", "witness_sum", witness_weight=_unit_weight)
ADAMIC_ADAR = Measure("adamic_adar", "witness_sum", witness_weight=adamic_adar_weight)
RESOURCE_ALLOCATION = Measure(
    "resource_allocation", "witness_sum", witness_weight=resource_allocation_weight
)
PREFERENTIAL_ATTACHMENT = Measure("preferential_attachment", "degree_product")

#: All built-in measures by name.  The paper's three target measures are
#: jaccard, common_neighbors and adamic_adar; the rest demonstrate that
#: the estimator algebra generalises (and serve the extension tests).
MEASURES: Dict[str, Measure] = {
    m.name: m
    for m in (
        JACCARD,
        COSINE,
        SORENSEN,
        HUB_PROMOTED,
        HUB_DEPRESSED,
        LEICHT_HOLME_NEWMAN,
        COMMON_NEIGHBORS,
        ADAMIC_ADAR,
        RESOURCE_ALLOCATION,
        PREFERENTIAL_ATTACHMENT,
    )
}


def measure_by_name(name: str) -> Measure:
    """Resolve a measure by registry name (raises on typos)."""
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(MEASURES)
        raise ConfigurationError(
            f"unknown measure {name!r}; known measures: {known}"
        ) from None


# ----------------------------------------------------------------------
# Exact evaluation on adjacency graphs
# ----------------------------------------------------------------------


def _neighbor_sets(graph: AdjacencyGraph, u: int, v: int) -> Tuple[set, set]:
    return (
        graph.neighbors(u) if u in graph else set(),
        graph.neighbors(v) if v in graph else set(),
    )


def common_neighbors(graph: AdjacencyGraph, u: int, v: int) -> int:
    """Exact ``|N(u) ∩ N(v)|`` (0 if either vertex is unknown)."""
    nu, nv = _neighbor_sets(graph, u, v)
    if len(nu) > len(nv):  # intersect from the smaller side
        nu, nv = nv, nu
    return sum(1 for w in nu if w in nv)


def jaccard(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact Jaccard coefficient of the two neighborhoods."""
    nu, nv = _neighbor_sets(graph, u, v)
    if not nu and not nv:
        return 0.0
    intersection = common_neighbors(graph, u, v)
    union = len(nu) + len(nv) - intersection
    return intersection / union if union else 0.0


def witness_sum(
    graph: AdjacencyGraph, u: int, v: int, weight: Callable[[int], float]
) -> float:
    """Exact ``Σ_{w ∈ N(u)∩N(v)} weight(d(w))``."""
    nu, nv = _neighbor_sets(graph, u, v)
    if len(nu) > len(nv):
        nu, nv = nv, nu
    return sum(weight(graph.degree(w)) for w in nu if w in nv)


def adamic_adar(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact Adamic–Adar index ``Σ 1/ln d(w)`` over common neighbors."""
    return witness_sum(graph, u, v, adamic_adar_weight)


def resource_allocation(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact resource-allocation index ``Σ 1/d(w)``."""
    return witness_sum(graph, u, v, resource_allocation_weight)


def preferential_attachment(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact preferential-attachment score ``d(u) * d(v)``."""
    return float(graph.degree_or_zero(u) * graph.degree_or_zero(v))


def cosine(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact cosine (Salton) similarity ``|∩| / sqrt(d(u) d(v))``."""
    return _cosine_ratio(
        common_neighbors(graph, u, v), graph.degree_or_zero(u), graph.degree_or_zero(v)
    )


def sorensen(graph: AdjacencyGraph, u: int, v: int) -> float:
    """Exact Sørensen index ``2|∩| / (d(u) + d(v))``."""
    return _sorensen_ratio(
        common_neighbors(graph, u, v), graph.degree_or_zero(u), graph.degree_or_zero(v)
    )


def exact_score(graph: AdjacencyGraph, u: int, v: int, measure: Measure) -> float:
    """Evaluate any :class:`Measure` exactly on the materialised graph."""
    if measure.kind == "degree_product":
        return preferential_attachment(graph, u, v)
    intersection = common_neighbors(graph, u, v)
    if measure.kind == "overlap_ratio":
        return measure.ratio(  # type: ignore[misc]
            float(intersection), graph.degree_or_zero(u), graph.degree_or_zero(v)
        )
    return witness_sum(graph, u, v, measure.witness_weight)  # type: ignore[arg-type]
