"""Exact measures, the snapshot oracle, and sampling baselines.

This subpackage is the "without sketches" side of the reproduction:
ground-truth measure evaluation (:mod:`repro.exact.measures`), the
full-memory snapshot method (:class:`~repro.exact.oracle.ExactOracle`),
and the bounded-memory sampling competitors
(:mod:`repro.exact.baselines`).
"""

from repro.exact.baselines import EdgeReservoirBaseline, NeighborReservoirBaseline
from repro.exact.measures import (
    ADAMIC_ADAR,
    COMMON_NEIGHBORS,
    COSINE,
    HUB_DEPRESSED,
    HUB_PROMOTED,
    JACCARD,
    LEICHT_HOLME_NEWMAN,
    MEASURES,
    PREFERENTIAL_ATTACHMENT,
    RESOURCE_ALLOCATION,
    SORENSEN,
    Measure,
    adamic_adar,
    adamic_adar_weight,
    common_neighbors,
    cosine,
    exact_score,
    jaccard,
    measure_by_name,
    preferential_attachment,
    resource_allocation,
    resource_allocation_weight,
    sorensen,
    witness_sum,
)
from repro.exact.oracle import ExactOracle

__all__ = [
    "ADAMIC_ADAR",
    "COMMON_NEIGHBORS",
    "COSINE",
    "HUB_DEPRESSED",
    "HUB_PROMOTED",
    "JACCARD",
    "LEICHT_HOLME_NEWMAN",
    "MEASURES",
    "PREFERENTIAL_ATTACHMENT",
    "RESOURCE_ALLOCATION",
    "SORENSEN",
    "Measure",
    "ExactOracle",
    "EdgeReservoirBaseline",
    "NeighborReservoirBaseline",
    "adamic_adar",
    "adamic_adar_weight",
    "common_neighbors",
    "cosine",
    "exact_score",
    "jaccard",
    "measure_by_name",
    "preferential_attachment",
    "resource_allocation",
    "resource_allocation_weight",
    "sorensen",
    "witness_sum",
]
