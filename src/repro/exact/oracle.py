"""The exact link-prediction oracle.

:class:`ExactOracle` materialises the full adjacency structure of the
stream and answers every measure query exactly.  It plays three roles:

1. **Ground truth.**  Every accuracy experiment scores estimators
   against the oracle's answers on the same stream prefix.
2. **The paper's strawman.**  The abstract's motivation is that "graph
   snapshots ... are no longer readily available in memory"; the oracle
   *is* that snapshot approach, and the space/throughput experiments
   (E2, E4) quantify exactly how much it costs.
3. **Reference implementation** of the :class:`~repro.interface.
   LinkPredictor` contract, against which the protocol tests check all
   other methods' conventions (cold-vertex behaviour, measure names).

Memory is ``Θ(|E|)``; per-edge update is ``O(1)`` amortised; a
witness-sum query is ``O(min(d(u), d(v)))``.
"""

from __future__ import annotations

from repro.exact.measures import exact_score, measure_by_name
from repro.graph.adjacency import AdjacencyGraph
from repro.interface import LinkPredictor

__all__ = ["ExactOracle"]


class ExactOracle(LinkPredictor):
    """Exact snapshot-based link predictor (the paper's comparator)."""

    method_name = "exact"

    __slots__ = ("graph",)

    def __init__(self) -> None:
        self.graph = AdjacencyGraph()

    def update(self, u: int, v: int) -> None:
        """Insert the edge (duplicates and orientation collapse)."""
        self.graph.add_edge(u, v)

    def score(self, u: int, v: int, measure_name: str) -> float:
        """Exact value of the measure on the current snapshot."""
        measure = measure_by_name(measure_name)
        return float(exact_score(self.graph, u, v, measure))

    def degree(self, vertex: int) -> int:
        return self.graph.degree_or_zero(vertex)

    @property
    def vertex_count(self) -> int:
        """Number of vertices materialised so far."""
        return self.graph.vertex_count

    def nominal_bytes(self) -> int:
        return self.graph.nominal_bytes()

    def __repr__(self) -> str:
        return f"ExactOracle({self.graph!r})"
