"""Sampling baselines: what bounded-memory link prediction looks like
*without* sketches.

The paper's pitch is that MinHash sketches beat the obvious
memory-bounded alternatives at equal space.  These are those
alternatives, implemented as first-class
:class:`~repro.interface.LinkPredictor` methods so experiment E8 can
compare all three at matched byte budgets:

* :class:`EdgeReservoirBaseline` — keep a uniform reservoir of ``M``
  stream edges and answer queries on the induced subgraph, with
  Horvitz–Thompson corrections for the sampling rate.  Global budget;
  hub neighborhoods crowd out everyone else's.
* :class:`NeighborReservoirBaseline` — keep a uniform reservoir of at
  most ``k`` neighbor ids *per vertex* (the structurally closest
  competitor to the per-vertex MinHash sketch), with HT-corrected
  overlap estimates.

Both track exact per-vertex degrees (one integer), exactly as the
sketch predictors do, so the comparison isolates the *neighborhood
summary* design — which is the paper's contribution.

Estimator notes (derivations in the respective ``score`` docstrings):
with edge-sampling probability ``p``, a common neighbor ``w`` of
``(u, v)`` survives into the sample only if both edges ``(u,w)`` and
``(v,w)`` survive — probability ``p²`` — so sampled witness-sums are
scaled by ``1/p²``.  That quadratic penalty, versus MinHash's direct
overlap estimation, is precisely why reservoirs lose at equal space.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import ConfigurationError
from repro.exact.measures import Measure, measure_by_name
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.stream import Edge, edge_key
from repro.interface import LinkPredictor
from repro.sketches.reservoir import Reservoir

__all__ = ["EdgeReservoirBaseline", "NeighborReservoirBaseline"]


def _ratio_from_intersection(measure: Measure, intersection: float, du: int, dv: int) -> float:
    """Apply an overlap-ratio measure to an estimated intersection size,
    clamping the intersection into its feasible range first."""
    feasible = min(du, dv)
    intersection = max(0.0, min(float(feasible), intersection))
    return measure.ratio(intersection, du, dv)  # type: ignore[misc]


class EdgeReservoirBaseline(LinkPredictor):
    """Uniform edge-reservoir subgraph with HT-corrected queries.

    Parameters
    ----------
    capacity:
        Number of edges retained.  Nominal space is ``8 * capacity``
        bytes for packed edges plus one degree word per vertex.
    seed:
        Reservoir randomness seed.
    """

    method_name = "edge_reservoir"

    __slots__ = ("capacity", "_reservoir", "_subgraph", "_multiplicity", "_degrees")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._reservoir: Reservoir[Edge] = Reservoir(capacity, seed)
        self._subgraph = AdjacencyGraph()
        # Reservoirs may hold several copies of a re-arriving edge; the
        # mirror subgraph keeps an edge while any copy survives.
        self._multiplicity: Dict[int, int] = {}
        self._degrees: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, u: int, v: int) -> None:
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        # Exact degree maintenance counts *distinct* incident edges; the
        # reservoir cannot tell re-arrivals apart, so like the sketch
        # predictors we count arrivals — callers with multi-edge streams
        # should pre-filter with graph.stream.deduplicated (documented).
        self._degrees[u] = self._degrees.get(u, 0) + 1
        self._degrees[v] = self._degrees.get(v, 0) + 1
        edge = Edge(u, v).canonical()
        admitted, evicted = self._reservoir.offer_with_eviction(edge)
        if evicted is not None:
            self._forget(evicted)
        if admitted:
            self._remember(edge)

    def _remember(self, edge: Edge) -> None:
        key = edge_key(edge.u, edge.v)
        count = self._multiplicity.get(key, 0)
        self._multiplicity[key] = count + 1
        if count == 0:
            self._subgraph.add_edge(edge.u, edge.v)

    def _forget(self, edge: Edge) -> None:
        key = edge_key(edge.u, edge.v)
        count = self._multiplicity[key] - 1
        if count == 0:
            del self._multiplicity[key]
            self._subgraph.remove_edge(edge.u, edge.v)
        else:
            self._multiplicity[key] = count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sampling_probability(self) -> float:
        """Current edge-inclusion probability ``min(1, M/stream_length)``."""
        return self._reservoir.sampling_probability()

    def score(self, u: int, v: int, measure_name: str) -> float:
        """HT-corrected estimate on the sampled subgraph.

        Witness-sums are scaled by ``1/p²`` (both witness edges must
        survive); witness weights are evaluated at *exact* degrees.
        Overlap ratios combine the corrected intersection with exact
        degrees.  Degree products use exact degrees (free).
        """
        measure = measure_by_name(measure_name)
        du = self.degree(u)
        dv = self.degree(v)
        if measure.kind == "degree_product":
            return float(du * dv)
        if du == 0 or dv == 0:
            return 0.0
        p = self.sampling_probability()
        correction = 1.0 / (p * p)
        sample_u = self._subgraph.neighbors(u) if u in self._subgraph else set()
        sample_v = self._subgraph.neighbors(v) if v in self._subgraph else set()
        if len(sample_u) > len(sample_v):
            sample_u, sample_v = sample_v, sample_u
        if measure.kind == "witness_sum":
            weight = measure.witness_weight
            return correction * sum(
                weight(self.degree(w)) for w in sample_u if w in sample_v
            )
        intersection = correction * sum(1 for w in sample_u if w in sample_v)
        return _ratio_from_intersection(measure, intersection, du, dv)

    def degree(self, vertex: int) -> int:
        return self._degrees.get(vertex, 0)

    @property
    def vertex_count(self) -> int:
        """Number of vertices with at least one observed edge."""
        return len(self._degrees)

    def nominal_bytes(self) -> int:
        return 8 * self.capacity + 8 * len(self._degrees)

    def __repr__(self) -> str:
        return (
            f"EdgeReservoirBaseline(capacity={self.capacity}, "
            f"seen={self._reservoir.seen})"
        )


class NeighborReservoirBaseline(LinkPredictor):
    """Per-vertex uniform neighbor samples with HT-corrected overlap.

    Parameters
    ----------
    sample_size:
        Neighbors retained per vertex (``k``).  Nominal space is
        ``8k + 8`` bytes per vertex — directly comparable to a MinHash
        sketch with the same ``k`` and witness tracking disabled.
    seed:
        Base randomness seed (each vertex reservoir derives its own).

    Estimator: with ``S_u, S_v`` the two samples and inclusion
    probabilities ``p_u = min(1, k/d(u))``, a common neighbor ``w``
    appears in both samples with probability ``p_u · p_v``
    (independent reservoirs), so::

        ĈN = |S_u ∩ S_v| / (p_u p_v)
        ÂA = Σ_{w ∈ S_u ∩ S_v} weight(d(w)) / (p_u p_v)

    are unbiased; ratios then combine ``ĈN`` with exact degrees.
    """

    method_name = "neighbor_reservoir"

    __slots__ = ("sample_size", "seed", "_samples", "_degrees")

    def __init__(self, sample_size: int, seed: int = 0) -> None:
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be positive, got {sample_size}")
        self.sample_size = sample_size
        self.seed = seed
        self._samples: Dict[int, Reservoir[int]] = {}
        self._degrees: Dict[int, int] = {}

    def _sample_of(self, vertex: int) -> Reservoir:
        reservoir = self._samples.get(vertex)
        if reservoir is None:
            reservoir = Reservoir(self.sample_size, self.seed ^ (vertex * 0x9E3779B9))
            self._samples[vertex] = reservoir
        return reservoir

    def update(self, u: int, v: int) -> None:
        if u == v:
            raise ConfigurationError(f"self-loop on vertex {u} is not allowed")
        self._degrees[u] = self._degrees.get(u, 0) + 1
        self._degrees[v] = self._degrees.get(v, 0) + 1
        self._sample_of(u).offer(v)
        self._sample_of(v).offer(u)

    def score(self, u: int, v: int, measure_name: str) -> float:
        measure = measure_by_name(measure_name)
        du = self.degree(u)
        dv = self.degree(v)
        if measure.kind == "degree_product":
            return float(du * dv)
        if du == 0 or dv == 0:
            return 0.0
        sample_u: Set[int] = set(self._samples[u])
        sample_v: Set[int] = set(self._samples[v])
        inclusion = (
            self._samples[u].sampling_probability()
            * self._samples[v].sampling_probability()
        )
        shared = sample_u & sample_v
        if measure.kind == "witness_sum":
            weight = measure.witness_weight
            return sum(weight(self.degree(w)) for w in shared) / inclusion
        intersection = len(shared) / inclusion
        return _ratio_from_intersection(measure, intersection, du, dv)

    def degree(self, vertex: int) -> int:
        return self._degrees.get(vertex, 0)

    @property
    def vertex_count(self) -> int:
        """Number of vertices with at least one observed edge."""
        return len(self._degrees)

    def nominal_bytes(self) -> int:
        held = sum(len(reservoir) for reservoir in self._samples.values())
        return 8 * held + 8 * len(self._degrees)

    def __repr__(self) -> str:
        return (
            f"NeighborReservoirBaseline(sample_size={self.sample_size}, "
            f"vertices={len(self._degrees)})"
        )
