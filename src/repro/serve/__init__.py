"""Batch query serving over warm sketch stores.

PR 1 hardened the *write* path (fault-tolerant, resumable ingestion);
this package is the *read* path: serving many measure queries per
second from a :class:`~repro.core.predictor.MinHashLinkPredictor`
without paying a Python-level loop per pair.

* :class:`~repro.serve.packed.PackedSketches` — every vertex sketch
  packed into one contiguous ``(n, k)`` matrix plus a degree vector,
  with binary-search row lookup.
* :mod:`repro.serve.kernels` — the vectorized scoring kernel: slot
  collisions via broadcast equality, then the estimator algebra of
  :mod:`repro.core.estimators` evaluated as array expressions for every
  registered measure.
* :class:`~repro.serve.engine.QueryEngine` — the serving facade:
  ``score_many(pairs, measure)`` and ``top_k(u, measure, k)`` (with
  LSH-pruned candidate generation), plus a flat ``stats()`` health
  surface mirroring :meth:`repro.stream.runner.StreamRunner.stats`.
* :class:`~repro.serve.server.SketchServer` — the always-on tier: a
  stdlib asyncio HTTP service over immutable
  :class:`~repro.serve.server.Generation` snapshots with zero-downtime
  hot-swap, request micro-batching, live background ingest and
  graceful drain (``repro.api.serve`` / ``repro-linkpred serve``).
* :mod:`repro.serve.loadgen` — the closed-loop load generator that
  measures it (and audits every response for torn reads).

The engine answers every query exactly as the per-pair
:meth:`~repro.core.predictor.MinHashLinkPredictor.score` path would —
same estimators, same clamps, same unseen-vertex policy (0.0, never a
``KeyError``) — it just answers thousands of them per NumPy dispatch.
"""

from repro.serve.engine import QueryEngine
from repro.serve.kernels import score_pairs_packed
from repro.serve.packed import PackedSketches
from repro.serve.server import Generation, SketchServer

__all__ = [
    "Generation",
    "PackedSketches",
    "QueryEngine",
    "SketchServer",
    "score_pairs_packed",
]
