"""Batch query serving over warm sketch stores.

PR 1 hardened the *write* path (fault-tolerant, resumable ingestion);
this package is the *read* path: serving many measure queries per
second from a :class:`~repro.core.predictor.MinHashLinkPredictor`
without paying a Python-level loop per pair.

* :class:`~repro.serve.packed.PackedSketches` — every vertex sketch
  packed into one contiguous ``(n, k)`` matrix plus a degree vector,
  with binary-search row lookup.
* :mod:`repro.serve.kernels` — the vectorized scoring kernel: slot
  collisions via broadcast equality, then the estimator algebra of
  :mod:`repro.core.estimators` evaluated as array expressions for every
  registered measure.
* :class:`~repro.serve.engine.QueryEngine` — the serving facade:
  ``score_many(pairs, measure)`` and ``top_k(u, measure, k)`` (with
  LSH-pruned candidate generation), plus a flat ``stats()`` health
  surface mirroring :meth:`repro.stream.runner.StreamRunner.stats`.

The engine answers every query exactly as the per-pair
:meth:`~repro.core.predictor.MinHashLinkPredictor.score` path would —
same estimators, same clamps, same unseen-vertex policy (0.0, never a
``KeyError``) — it just answers thousands of them per NumPy dispatch.
"""

from repro.serve.engine import QueryEngine
from repro.serve.kernels import score_pairs_packed
from repro.serve.packed import PackedSketches

__all__ = ["PackedSketches", "QueryEngine", "score_pairs_packed"]
