"""Contiguous sketch matrices: the data layout of the batch kernel.

A live :class:`~repro.core.predictor.MinHashLinkPredictor` keeps one
small sketch object per vertex — ideal for constant-time stream
updates, hostile to batch queries, which would touch thousands of
scattered Python objects.  :class:`PackedSketches` snapshots that state
into the layout the vectorized kernel wants:

* ``values`` — ``uint64 (n, k)``: row ``i`` is vertex
  ``vertex_ids[i]``'s slot minima,
* ``witnesses`` — ``int64 (n, k)`` (or ``None`` without witness
  tracking),
* ``degrees`` — ``int64 (n,)``, as believed by the predictor's tracker
  at pack time,
* ``vertex_ids`` — sorted ``int64 (n,)``, so vertex→row resolution is
  one :func:`numpy.searchsorted` for a whole batch.

The pack is a *frozen snapshot*: stream updates applied to the
predictor after packing are not reflected until
:meth:`QueryEngine.refresh <repro.serve.engine.QueryEngine.refresh>`
re-packs.  That is the intended serving discipline — the write path
and the read path share nothing mutable, so neither can stall the
other.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError, SketchStateError
from repro.sketches.minhash import EMPTY_SLOT, NO_WITNESS

__all__ = ["PackedSketches"]

VertexBatch = Union[Sequence[int], np.ndarray]


class PackedSketches(object):
    """A predictor's sketches as one contiguous matrix per component.

    Build with :meth:`from_predictor`; all arrays are copies owned by
    this object (the predictor may keep streaming).
    """

    __slots__ = (
        "vertex_ids",
        "values",
        "witnesses",
        "degrees",
        "update_counts",
        "k",
        "seed",
        "pack_seconds",
        "_witness_degrees",
        "_weight_cache",
    )

    def __init__(
        self,
        vertex_ids: np.ndarray,
        values: np.ndarray,
        witnesses: Optional[np.ndarray],
        degrees: np.ndarray,
        update_counts: np.ndarray,
        *,
        k: int,
        seed: int,
        pack_seconds: float = 0.0,
    ) -> None:
        if values.shape != (len(vertex_ids), k):
            raise SketchStateError(
                f"values matrix has shape {values.shape}, "
                f"expected ({len(vertex_ids)}, {k})"
            )
        if witnesses is not None and witnesses.shape != values.shape:
            raise SketchStateError(
                f"witnesses matrix has shape {witnesses.shape}, "
                f"expected {values.shape}"
            )
        self.vertex_ids = vertex_ids
        self.values = values
        self.witnesses = witnesses
        self.degrees = degrees
        self.update_counts = update_counts
        self.k = k
        self.seed = seed
        self.pack_seconds = pack_seconds
        self._witness_degrees: Optional[np.ndarray] = None
        self._weight_cache: dict = {}

    @classmethod
    def from_predictor(cls, predictor: MinHashLinkPredictor) -> "PackedSketches":
        """Snapshot a predictor into packed form (timed; see
        :attr:`pack_seconds`)."""
        # Wall time feeds only the pack_seconds telemetry field, never
        # the packed arrays; the bit-identity contract is unaffected.
        started = time.perf_counter()  # repro-lint: disable=RL001
        exported = predictor.export_arrays()
        return cls(
            exported.vertex_ids,
            exported.values,
            exported.witnesses,
            exported.degrees,
            exported.update_counts,
            k=predictor.config.k,
            seed=predictor.config.seed,
            # Telemetry field only; see the note on `started` above.
            pack_seconds=time.perf_counter() - started,  # repro-lint: disable=RL001
        )

    @classmethod
    def from_shards(
        cls, shards: Sequence[MinHashLinkPredictor]
    ) -> "PackedSketches":
        """Pack shard predictors straight into merged matrices.

        The serving-side join of parallel ingestion: rather than
        reducing N shard predictors into one merged predictor object
        (N·n sketch merges plus a full per-vertex dict copy) and packing
        *that*, this packs each shard's exported arrays directly into
        the union layout — per-slot minima, shard-order tie-breaks, and
        summed counters are computed as array folds, so the result is
        **bit-identical** to
        ``from_predictor(merge_shards(shards))`` without the
        intermediate predictor ever existing.

        All shards must share one configuration, and that configuration
        must be mergeable (exact degrees — see
        :meth:`repro.core.config.SketchConfig.require_mergeable`).
        """
        # Telemetry only, as in from_predictor.
        started = time.perf_counter()  # repro-lint: disable=RL001
        if not shards:
            raise ConfigurationError("from_shards needs at least one shard predictor")
        config = shards[0].config
        for shard in shards[1:]:
            if shard.config != config:
                raise SketchStateError(
                    "can only pack shards with identical configurations "
                    f"(got {config} vs {shard.config})"
                )
        config.require_mergeable()
        exports = [shard.export_arrays() for shard in shards]
        vertex_ids = np.unique(
            np.concatenate([export.vertex_ids for export in exports])
        )
        n, k = len(vertex_ids), config.k
        values = np.full((n, k), EMPTY_SLOT, dtype=np.uint64)
        witnesses = (
            np.full((n, k), NO_WITNESS, dtype=np.int64)
            if config.track_witnesses
            else None
        )
        update_counts = np.zeros(n, dtype=np.int64)
        degrees = np.zeros(n, dtype=np.int64)
        for export in exports:
            rows = np.searchsorted(vertex_ids, export.vertex_ids)
            # Strict < keeps the earlier shard's witness on value ties —
            # exactly merge()'s tie-break, preserving bit-identity.
            block = values[rows]
            take = export.values < block
            block[take] = export.values[take]
            values[rows] = block
            if witnesses is not None:
                witness_block = witnesses[rows]
                witness_block[take] = export.witnesses[take]
                witnesses[rows] = witness_block
            update_counts[rows] += export.update_counts
            degrees[rows] += export.degrees
        return cls(
            vertex_ids,
            values,
            witnesses,
            degrees,
            update_counts,
            k=k,
            seed=config.seed,
            # Telemetry field only; see the note on `started` above.
            pack_seconds=time.perf_counter() - started,  # repro-lint: disable=RL001
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self.vertex_ids)

    def rows_of(self, vertices: VertexBatch) -> np.ndarray:
        """Rows of a batch of vertex ids; ``-1`` marks unseen vertices.

        The ``-1`` sentinel is how the unseen-vertex policy flows
        through the kernel: unseen rows are masked out and score 0.0
        for every measure, mirroring the per-pair path.
        """
        ids = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if self.n_vertices == 0:
            return np.full(ids.shape, -1, dtype=np.int64)
        positions = np.searchsorted(self.vertex_ids, ids)
        positions = np.minimum(positions, self.n_vertices - 1)
        found = self.vertex_ids[positions] == ids
        return np.where(found, positions, np.int64(-1))

    def row_of(self, vertex: int) -> int:
        """Row of one vertex id, or ``-1`` if unseen."""
        return int(self.rows_of(np.array([vertex], dtype=np.int64))[0])

    def degrees_of(self, vertices: VertexBatch) -> np.ndarray:
        """Degrees for a batch of vertex ids (0 for unseen vertices).

        Used by the witness-sum kernel to resolve witness degrees: a
        witness is always a vertex that appeared as a stream endpoint,
        but the 0-default keeps the kernel total even when a slot holds
        the ``NO_WITNESS`` sentinel (masked out downstream anyway).
        """
        rows = self.rows_of(vertices)
        if self.n_vertices == 0:
            return np.zeros(rows.shape, dtype=np.int64)
        return np.where(rows >= 0, self.degrees[np.maximum(rows, 0)], np.int64(0))

    def witness_degree_matrix(self) -> np.ndarray:
        """Degree of each witness slot, ``int64 (n, k)``.

        Resolving witness ids to degrees is a searchsorted over ``n·k``
        ids — identical for every query against a frozen pack, so it
        runs once on first use and is cached (this is the dominant cost
        of the witness-sum kernel when done per query).
        """
        if self.witnesses is None:
            raise SketchStateError(
                "store has no witnesses; construct the predictor with "
                "SketchConfig(track_witnesses=True)"
            )
        if self._witness_degrees is None:
            self._witness_degrees = self.degrees_of(
                self.witnesses.ravel()
            ).reshape(self.witnesses.shape)
        return self._witness_degrees

    def witness_weight_matrix(self, name, weight_fn) -> np.ndarray:
        """``weight_fn`` applied to :meth:`witness_degree_matrix`,
        cached per measure name (weights are pure functions of the
        frozen degrees)."""
        cached = self._weight_cache.get(name)
        if cached is None:
            cached = weight_fn(self.witness_degree_matrix())
            self._weight_cache[name] = cached
        return cached

    def fingerprint(self) -> str:
        """sha256 hex digest over every packed array.

        Two stores share a fingerprint iff their matrices are
        bit-identical, so this is the serving tier's *generation
        identity*: every response of the HTTP server carries the
        fingerprint of the store that answered it, and a reader that
        ever saw scores from one generation tagged with another
        generation's fingerprint has witnessed a torn hot-swap (the
        atomicity suite and ``bench_e17_serving`` assert this never
        happens).  Mirrors
        :func:`repro.stream.casebook.sketch_fingerprint` on the ingest
        side, but over the packed layout.
        """
        digest = hashlib.sha256()
        for array in (self.vertex_ids, self.values, self.degrees, self.update_counts):
            digest.update(np.ascontiguousarray(array).tobytes())
        if self.witnesses is not None:
            digest.update(np.ascontiguousarray(self.witnesses).tobytes())
        return digest.hexdigest()

    def to_predictor(self) -> MinHashLinkPredictor:
        """Reconstruct a live predictor from the packed snapshot.

        The inverse of :meth:`from_predictor` (exact-degree
        configurations only — the pack does not carry Count-Min
        tables): the result answers every query identically to the
        predictor that was packed, and round-trips back to an equal
        :meth:`fingerprint`.  This is how the serving benchmark
        recomputes scores *offline* for a generation it only knows as
        packed arrays.
        """
        from repro.core.config import SketchConfig
        from repro.core.degrees import ExactDegrees
        from repro.sketches.minhash import KMinHash

        config = SketchConfig(
            k=self.k, seed=self.seed, track_witnesses=self.witnesses is not None
        )
        predictor = MinHashLinkPredictor(config)
        degree_table = predictor._degrees
        if not isinstance(degree_table, ExactDegrees):  # pragma: no cover
            raise SketchStateError("to_predictor requires exact degrees")
        for row, vertex in enumerate(self.vertex_ids.tolist()):
            predictor._sketches[vertex] = KMinHash.from_arrays(
                predictor.bank,
                self.values[row],
                self.witnesses[row] if self.witnesses is not None else None,
                update_count=int(self.update_counts[row]),
            )
            if self.degrees[row]:
                degree_table._counts[vertex] = int(self.degrees[row])
        return predictor

    def nominal_bytes(self) -> int:
        """Packed size of the matrices (the serving-tier memory cost)."""
        total = self.values.nbytes + self.degrees.nbytes + self.vertex_ids.nbytes
        if self.witnesses is not None:
            total += self.witnesses.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"PackedSketches(vertices={self.n_vertices}, k={self.k}, "
            f"witnesses={self.witnesses is not None})"
        )
