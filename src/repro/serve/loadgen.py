"""Closed-loop load generator for the serving tier.

``run_load`` drives a running :class:`~repro.serve.server.SketchServer`
with N worker threads, each issuing ``POST /v1/score`` batches over a
persistent keep-alive connection and waiting for the response before
sending the next (closed-loop: concurrency is exactly ``workers``, so
measured latency is honest — no coordinated-omission from an open-loop
arrival process).  It is the measurement half of
``benchmarks/bench_e17_serving.py`` and of the hot-swap atomicity
tests, so beyond throughput/latency it audits *correctness* of every
response:

* **torn reads** — each response carries a generation number and the
  sha256 fingerprint of the pack it was scored against; if one
  generation number is ever seen with two fingerprints, a hot-swap
  leaked a half-published snapshot.  ``LoadReport.torn_reads`` counts
  these (the benchmark gates it at zero).
* **bit-identity samples** — with ``record_samples > 0`` each worker
  keeps full ``(generation, pairs, scores)`` records of its first
  responses, which the benchmark later re-scores offline against
  :meth:`PackedSketches.to_predictor
  <repro.serve.packed.PackedSketches.to_predictor>` reconstructions of
  the same generations.

Stdlib-only (``http.client`` + ``threading``), like the server it
measures.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LoadReport", "ScoredSample", "run_load"]


class ScoredSample:
    """One audited response: enough to re-score it offline."""

    __slots__ = ("generation", "fingerprint", "measure", "pairs", "scores")

    def __init__(
        self,
        generation: int,
        fingerprint: str,
        measure: str,
        pairs: np.ndarray,
        scores: np.ndarray,
    ) -> None:
        self.generation = generation
        self.fingerprint = fingerprint
        self.measure = measure
        self.pairs = pairs
        self.scores = scores


class LoadReport:
    """What a load run observed; the benchmark's raw material."""

    __slots__ = (
        "requests",
        "failures",
        "torn_reads",
        "pairs_scored",
        "elapsed",
        "status_counts",
        "generations",
        "latencies",
        "samples",
        "errors",
    )

    def __init__(
        self,
        requests: int,
        failures: int,
        torn_reads: int,
        pairs_scored: int,
        elapsed: float,
        status_counts: Dict[int, int],
        generations: Dict[int, str],
        latencies: np.ndarray,
        samples: List[ScoredSample],
        errors: List[str],
    ) -> None:
        self.requests = requests
        self.failures = failures
        self.torn_reads = torn_reads
        self.pairs_scored = pairs_scored
        self.elapsed = elapsed
        self.status_counts = status_counts
        #: generation number -> the single fingerprint it was seen with
        self.generations = generations
        self.latencies = latencies
        self.samples = samples
        self.errors = errors

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def pairs_per_second(self) -> float:
        return self.pairs_scored / self.elapsed if self.elapsed > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """Latency quantile in seconds (0.0 when nothing completed)."""
        if len(self.latencies) == 0:
            return 0.0
        return float(np.quantile(self.latencies, q))

    def summary(self) -> Dict[str, object]:
        """The flat dict the benchmark emits as JSON."""
        return {
            "requests": self.requests,
            "failures": self.failures,
            "torn_reads": self.torn_reads,
            "pairs_scored": self.pairs_scored,
            "elapsed_seconds": self.elapsed,
            "qps": self.qps,
            "pairs_per_second": self.pairs_per_second,
            "latency_p50_ms": self.latency_quantile(0.50) * 1e3,
            "latency_p95_ms": self.latency_quantile(0.95) * 1e3,
            "latency_p99_ms": self.latency_quantile(0.99) * 1e3,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "generations_observed": len(self.generations),
        }

    def __repr__(self) -> str:
        return (
            f"LoadReport(requests={self.requests}, qps={self.qps:.0f}, "
            f"p99={self.latency_quantile(0.99) * 1e3:.2f}ms, "
            f"failures={self.failures}, torn={self.torn_reads})"
        )


class _Audit:
    """Shared cross-worker state: the torn-read ledger."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.generations: Dict[int, str] = {}
        self.torn = 0

    def observe(self, generation: int, fingerprint: str) -> None:
        with self.lock:
            known = self.generations.setdefault(generation, fingerprint)
            if known != fingerprint:
                self.torn += 1


def _worker(
    host: str,
    port: int,
    pairs_pool: np.ndarray,
    measure: str,
    batch_pairs: int,
    stop_at: float,
    timeout: float,
    seed: int,
    record_samples: int,
    out_latencies: List[float],
    out_statuses: Dict[int, int],
    out_samples: List[ScoredSample],
    out_errors: List[str],
    counters: List[int],
    audit: _Audit,
) -> None:
    rng = np.random.default_rng(seed)
    connection: Optional[http.client.HTTPConnection] = None
    while time.monotonic() < stop_at:
        rows = rng.integers(0, len(pairs_pool), size=batch_pairs)
        pairs = pairs_pool[rows]
        body = json.dumps({"pairs": pairs.tolist(), "measure": measure})
        started = time.monotonic()
        try:
            if connection is None:
                connection = http.client.HTTPConnection(host, port, timeout=timeout)
            connection.request(
                "POST", "/v1/score", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            counters[0] += 1  # requests
            counters[1] += 1  # failures
            if len(out_errors) < 20:
                out_errors.append(f"{type(error).__name__}: {error}")
            if connection is not None:
                connection.close()
            connection = None
            continue
        elapsed = time.monotonic() - started
        counters[0] += 1
        out_statuses[status] = out_statuses.get(status, 0) + 1
        if status != 200:
            counters[1] += 1
            if len(out_errors) < 20:
                out_errors.append(f"HTTP {status}: {payload[:120]!r}")
            continue
        out_latencies.append(elapsed)
        counters[2] += len(pairs)
        try:
            document = json.loads(payload)
            generation = int(document["generation"])
            fingerprint = document["fingerprint"]
            scores = np.array(
                [row["score"] for row in document["results"]], dtype=np.float64
            )
        except (ValueError, KeyError, TypeError) as error:
            counters[1] += 1
            if len(out_errors) < 20:
                out_errors.append(f"bad response body: {error}")
            continue
        if len(scores) != len(pairs):
            counters[1] += 1
            if len(out_errors) < 20:
                out_errors.append(
                    f"result length {len(scores)} != batch size {len(pairs)}"
                )
            continue
        audit.observe(generation, fingerprint)
        if len(out_samples) < record_samples:
            out_samples.append(
                ScoredSample(generation, fingerprint, measure, pairs.copy(), scores)
            )
    if connection is not None:
        connection.close()


def run_load(
    host: str,
    port: int,
    pairs_pool,
    *,
    measure: str = "jaccard",
    workers: int = 4,
    duration: float = 5.0,
    batch_pairs: int = 16,
    record_samples: int = 0,
    seed: int = 0,
    timeout: float = 10.0,
) -> LoadReport:
    """Drive ``host:port`` closed-loop and audit every response.

    ``pairs_pool`` is an ``(n, 2)`` array of candidate pairs; each
    request draws ``batch_pairs`` rows from it at random (with
    replacement).  ``record_samples`` is *per worker*: each worker
    keeps its first that-many full responses for offline re-scoring.
    Workers share one torn-read ledger, so a swap that leaks across
    connections is still caught.
    """
    pool = np.asarray(pairs_pool, dtype=np.int64)
    if pool.ndim != 2 or pool.shape[1] != 2 or len(pool) == 0:
        raise ConfigurationError(
            f"pairs_pool must be a non-empty (n, 2) array, got {pool.shape}"
        )
    audit = _Audit()
    per_worker: List[Tuple[List[float], Dict[int, int], List[ScoredSample], List[str], List[int]]] = []
    threads = []
    stop_at = time.monotonic() + duration
    started = time.monotonic()
    for index in range(workers):
        state: Tuple[List[float], Dict[int, int], List[ScoredSample], List[str], List[int]] = (
            [],
            {},
            [],
            [],
            [0, 0, 0],
        )
        per_worker.append(state)
        thread = threading.Thread(
            target=_worker,
            args=(
                host,
                port,
                pool,
                measure,
                batch_pairs,
                stop_at,
                timeout,
                seed * 1000 + index,
                record_samples,
                *state,
                audit,
            ),
            name=f"repro-loadgen-{index}",
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    latencies = np.array(
        [value for state in per_worker for value in state[0]], dtype=np.float64
    )
    statuses: Dict[int, int] = {}
    for state in per_worker:
        for status, count in state[1].items():
            statuses[status] = statuses.get(status, 0) + count
    samples = [sample for state in per_worker for sample in state[2]]
    errors = [error for state in per_worker for error in state[3]][:20]
    return LoadReport(
        requests=sum(state[4][0] for state in per_worker),
        failures=sum(state[4][1] for state in per_worker),
        torn_reads=audit.torn,
        pairs_scored=sum(state[4][2] for state in per_worker),
        elapsed=elapsed,
        status_counts=statuses,
        generations=dict(audit.generations),
        latencies=latencies,
        samples=samples,
        errors=errors,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.serve.loadgen HOST:PORT`` — ad-hoc load runs."""
    import argparse

    parser = argparse.ArgumentParser(description="closed-loop load for a repro server")
    parser.add_argument("target", help="host:port of a running serve instance")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--batch-pairs", type=int, default=16)
    parser.add_argument("--measure", default="jaccard")
    parser.add_argument("--max-vertex", type=int, default=1000,
                        help="pairs are drawn uniformly from [0, max-vertex)")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args(argv)
    host, _, port_text = arguments.target.rpartition(":")
    rng = np.random.default_rng(arguments.seed)
    pool = rng.integers(0, arguments.max_vertex, size=(4096, 2))
    report = run_load(
        host or "127.0.0.1",
        int(port_text),
        pool,
        measure=arguments.measure,
        workers=arguments.workers,
        duration=arguments.duration,
        batch_pairs=arguments.batch_pairs,
        seed=arguments.seed,
    )
    print(json.dumps(report.summary(), indent=2))
    return 0 if report.failures == 0 and report.torn_reads == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
