"""The batch query engine: the library's serving tier.

:class:`QueryEngine` wraps a (frozen or still-streaming) predictor
with the three things a query server needs:

* **throughput** — :meth:`QueryEngine.score_many` answers a whole pair
  batch per NumPy dispatch through the packed kernel (internally
  chunked, so a ten-million-pair file cannot exhaust memory),
* **candidate generation** — :meth:`QueryEngine.top_k` finds a
  vertex's best partners by pruning through the LSH banding index of
  :mod:`repro.core.lshindex` and exact-sketch rescoring only the
  survivors; the default ``rows=1`` banding is *exact-recall* (a
  vertex is a candidate iff it shares at least one slot, i.e. iff
  ``Ĵ > 0``), so the pruned top-k equals the brute-force top-k while
  scoring far fewer candidates,
* **observability** — :meth:`QueryEngine.stats` is a flat dict of
  per-stage counters and timings (pack time, index build time,
  candidates pruned, scores/sec), mirroring
  :meth:`StreamRunner.stats <repro.stream.runner.StreamRunner.stats>`
  on the write path.

The engine snapshots the predictor at construction; call
:meth:`refresh` after further stream updates to serve the newer state.
Scores agree with the per-pair ``predictor.score`` path measure-for-
measure, including the unseen-vertex policy (0.0 everywhere, never a
``KeyError``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.lshindex import LshCandidateIndex
from repro.core.predictor import MinHashLinkPredictor
from repro.errors import ConfigurationError
from repro.exact.measures import Measure, measure_by_name
from repro.obs.registry import MetricsRegistry
from repro.serve.kernels import score_pairs_packed
from repro.serve.packed import PackedSketches

__all__ = ["QueryEngine"]

PairBatch = Union[Sequence[Tuple[int, int]], np.ndarray]


class QueryEngine(object):
    """Batch measure queries over a predictor's packed sketches.

    Most applications reach this through the facade —
    :func:`repro.api.open_engine` also accepts saved ``.npz`` snapshots
    and (serial or sharded) checkpoint directories; direct construction
    stays supported and identical for a warm predictor.

    Parameters
    ----------
    predictor:
        The warm :class:`MinHashLinkPredictor` to serve from; packed
        (snapshotted) immediately.
    bands / rows:
        Banding shape for the ``top_k`` candidate index.  The default
        (``rows=1``, ``bands=k``) gives exact recall — pruning never
        changes the answer, only the work.  Narrower shapes (e.g. from
        :func:`~repro.core.lshindex.bands_for_threshold`) prune harder
        at the documented S-curve recall; pass them when approximate
        top-k is acceptable.
    min_degree:
        Vertices below this degree are left out of the candidate index
        (``1`` by default: every sketched vertex is indexed, keeping
        the exact-recall guarantee).
    batch_size:
        ``score_many`` chunk size in pairs.  Bounds kernel scratch
        memory at roughly ``batch_size * k * 9`` bytes, and the default
        keeps that scratch cache-resident — one huge chunk measures
        ~3x slower than 4096-pair chunks on the witness-sum measures.
    metrics:
        The :class:`~repro.obs.registry.MetricsRegistry` holding the
        engine's instruments (the ``query_*`` family); default a fresh
        enabled registry.  :meth:`stats` reads these instruments, so
        the legacy dict and any Prometheus/JSON export of
        :attr:`metrics` always agree.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        predictor: MinHashLinkPredictor,
        *,
        bands: Optional[int] = None,
        rows: Optional[int] = None,
        min_degree: int = 1,
        batch_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if (bands is None) != (rows is None):
            raise ConfigurationError(
                "bands and rows must be given together (or both left default)"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.predictor = predictor
        self.bands = bands if bands is not None else predictor.config.k
        self.rows = rows if rows is not None else 1
        self.min_degree = min_degree
        self.batch_size = batch_size
        self.clock = clock
        self.store = PackedSketches.from_predictor(predictor)
        self._index: Optional[LshCandidateIndex] = None
        self._index_seconds = 0.0
        #: The instrument namespace behind stats() and the exporters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Counters (lifetime of one served snapshot, reset by refresh()).
        self._m_batches = self.metrics.counter(
            "query_batches_total", "score_many() calls served"
        )
        self._m_pairs = self.metrics.counter(
            "query_pairs_scored_total", "Pairs scored through the packed kernel"
        )
        self._m_topk = self.metrics.counter(
            "query_topk_total", "top_k() queries served"
        )
        self._m_candidates = self.metrics.counter(
            "query_candidates_total",
            "top_k candidates, by whether LSH pruning kept or pruned them",
            labelnames=("disposition",),
        )
        self._m_candidates_scored = self._m_candidates.labels("scored")
        self._m_candidates_pruned = self._m_candidates.labels("pruned")
        self._m_scoring_seconds = self.metrics.counter(
            "query_scoring_seconds_total", "Wall seconds inside the scoring kernel"
        )
        self._m_scoring_seconds.inc(0.0)  # stats() reports a float even when idle
        self._m_batch_seconds = self.metrics.histogram(
            "query_batch_seconds", "Wall seconds per score_many() call"
        )
        # Read-time gauges over the packed snapshot and the LSH index.
        self.metrics.gauge(
            "query_store_vertices", "Vertices in the packed snapshot"
        ).set_function(lambda: self.store.n_vertices)
        self.metrics.gauge(
            "query_store_bytes", "Nominal bytes of the packed matrices"
        ).set_function(lambda: self.store.nominal_bytes())
        self.metrics.gauge(
            "query_pack_seconds", "Wall seconds the last pack took"
        ).set_function(lambda: self.store.pack_seconds)
        self.metrics.gauge(
            "query_index_build_seconds", "Wall seconds the last LSH index build took"
        ).set_function(lambda: self._index_seconds)
        self.metrics.gauge(
            "query_index_buckets", "Buckets in the LSH candidate index (0 until built)"
        ).set_function(lambda: self._index.bucket_count() if self._index else 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Re-pack the predictor's current state (and rebuild the
        candidate index lazily on the next ``top_k``).  Counters reset:
        they describe one served snapshot."""
        self.store = PackedSketches.from_predictor(self.predictor)
        self._index = None
        self._index_seconds = 0.0
        for instrument in (
            self._m_batches,
            self._m_pairs,
            self._m_topk,
            self._m_candidates,
            self._m_scoring_seconds,
            self._m_batch_seconds,
        ):
            instrument.reset()

    def _ensure_index(self) -> LshCandidateIndex:
        if self._index is None:
            started = self.clock()
            self._index = LshCandidateIndex(
                self.predictor,
                bands=self.bands,
                rows=self.rows,
                min_degree=self.min_degree,
            )
            self._index_seconds = self.clock() - started
        return self._index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def score_many(self, pairs: PairBatch, measure_name: str = "jaccard") -> np.ndarray:
        """Scores for a batch of ``(u, v)`` pairs, ``float64 (m,)``.

        Row ``i`` of the result is exactly what
        ``predictor.score(pairs[i][0], pairs[i][1], measure_name)``
        would return against the packed snapshot (the consistency suite
        pins the equality).  Accepts any sequence of pairs or an
        ``(m, 2)`` integer array; an empty batch returns an empty
        array.
        """
        measure = measure_by_name(measure_name)
        array = np.asarray(pairs, dtype=np.int64)
        if array.size == 0:
            return np.zeros(0, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ConfigurationError(
                f"pairs must be an (m, 2) batch, got shape {array.shape}"
            )
        started = self.clock()
        out = np.empty(len(array), dtype=np.float64)
        for lo in range(0, len(array), self.batch_size):
            chunk = array[lo : lo + self.batch_size]
            out[lo : lo + len(chunk)] = score_pairs_packed(
                self.store, chunk[:, 0], chunk[:, 1], measure
            )
        elapsed = self.clock() - started
        self._m_scoring_seconds.inc(elapsed)
        self._m_batch_seconds.observe(elapsed)
        self._m_batches.inc()
        self._m_pairs.inc(len(array))
        return out

    def score(self, u: int, v: int, measure_name: str = "jaccard") -> float:
        """Single-pair convenience over :meth:`score_many`."""
        return float(self.score_many(np.array([[u, v]], dtype=np.int64), measure_name)[0])

    def top_k(
        self,
        u: int,
        measure_name: str = "jaccard",
        k: int = 10,
        *,
        prune: Optional[bool] = None,
    ) -> List[Tuple[int, float]]:
        """The ``k`` best-scoring partners of ``u``, descending.

        Only vertices with a strictly positive score are returned (a
        zero score means "no evidence", which is not a recommendation),
        so the result may be shorter than ``k``.  Ties break on the
        ascending vertex id, matching
        :meth:`~repro.interface.LinkPredictor.rank_candidates`.

        ``prune`` selects candidate generation: ``True`` consults the
        LSH index (built lazily on first use), ``False`` scores every
        packed vertex, ``None`` (default) prunes for every measure
        except ``preferential_attachment`` — a degree product is
        positive for *any* warm pair, so bucket pruning would be wrong
        there and the engine falls back to brute force.

        An unseen ``u`` returns ``[]`` (the unseen-vertex policy).
        """
        measure = measure_by_name(measure_name)
        if k < 1:
            raise ConfigurationError(f"k must be positive, got {k}")
        if prune is None:
            prune = measure.kind != "degree_product"
        if prune and measure.kind == "degree_product":
            raise ConfigurationError(
                f"measure {measure.name!r} scores pairs with no sketch overlap; "
                "LSH pruning would drop true candidates — call with prune=False"
            )
        self._m_topk.inc()
        if self.store.row_of(u) < 0:
            return []
        brute_pool = self.store.n_vertices - 1  # everyone but u itself
        if prune:
            found = self._ensure_index().candidates_of(u)
            candidates = np.fromiter(found, dtype=np.int64, count=len(found))
            candidates.sort()
        else:
            candidates = self.store.vertex_ids[self.store.vertex_ids != u]
        self._m_candidates_scored.inc(len(candidates))
        self._m_candidates_pruned.inc(brute_pool - len(candidates))
        if len(candidates) == 0:
            return []
        scores = self.score_many(
            np.column_stack([np.full(len(candidates), u, dtype=np.int64), candidates]),
            measure_name,
        )
        positive = np.flatnonzero(scores > 0.0)
        order = positive[np.lexsort((candidates[positive], -scores[positive]))][:k]
        return [(int(candidates[i]), float(scores[i])) for i in order]

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Engine health as a flat dict (the serving-side monitoring
        surface, mirroring ``StreamRunner.stats()`` on the write side).

        Every counter is a *read* of the shared
        :class:`~repro.obs.registry.MetricsRegistry`, so this dict and
        any Prometheus/JSON export of :attr:`metrics` always agree.
        The returned dict is a defensive snapshot — mutate it freely.
        """
        seconds = self._m_scoring_seconds.value
        pairs = int(self._m_pairs.value)
        return {
            "vertices": self.store.n_vertices,
            "k": self.store.k,
            "packed_bytes": self.store.nominal_bytes(),
            "pack_seconds": self.store.pack_seconds,
            "index_bands": self.bands,
            "index_rows": self.rows,
            "index_built": self._index is not None,
            "index_build_seconds": self._index_seconds,
            "index_buckets": self._index.bucket_count() if self._index else 0,
            "batches": int(self._m_batches.value),
            "pairs_scored": pairs,
            "topk_queries": int(self._m_topk.value),
            "candidates_scored": int(self._m_candidates_scored.value),
            "candidates_pruned": int(self._m_candidates_pruned.value),
            "scoring_seconds": seconds,
            "scores_per_second": (pairs / seconds) if seconds > 0 else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"QueryEngine(vertices={self.store.n_vertices}, k={self.store.k}, "
            f"banding={self.bands}x{self.rows})"
        )
