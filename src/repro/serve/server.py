"""The always-on serving tier: an asyncio HTTP service over the engine.

The library so far had a fast read path (:class:`~repro.serve.engine.
QueryEngine` over frozen :class:`~repro.serve.packed.PackedSketches`)
and a durable write path (:class:`~repro.stream.runner.StreamRunner`),
but no way to put either behind a socket.  :class:`SketchServer` is
that missing tier — a **stdlib-only** asyncio HTTP/1.1 service built
around one invariant:

    *Serving always reads an immutable generation.*

A :class:`Generation` bundles a :class:`QueryEngine` over one frozen
pack with a monotonically increasing number and the pack's sha256
:meth:`~repro.serve.packed.PackedSketches.fingerprint`.  Ingest keeps
running in a background thread against the live predictor; on the
refresh cadence that thread builds the *next* generation (pack + engine
construction happen entirely off the event loop) and publishes it by
assigning **one reference**.  A request resolves ``self._generation``
exactly once, so an in-flight read can never observe half of one
snapshot and half of another — every response is tagged with the
generation number and fingerprint it was answered from, which is how
the atomicity suite and ``bench_e17_serving`` prove the swap is torn-
read-free.

Endpoints (the versioned ``/v1/...`` spellings are canonical; the
unprefixed paths are permanent aliases for pre-versioning clients, and
every response carries ``X-Repro-Api-Version`` naming the version that
answered it):

* ``POST /v1/score`` — score a pair batch.  Body is JSON
  (``{"pairs": [[u, v], ...], "measure": "jaccard"}``) or the CLI's
  pair-file text format (``u v`` lines, ``#`` comments); responses are
  JSON or CSV (``?format=csv``), in the exact shapes ``repro-linkpred
  query`` emits.
* ``GET /v1/topk/<vertex>`` — the engine's pruned top-k
  (``?measure=&k=&prune=``).
* ``GET /v1/healthz`` — liveness + the runner/engine ``stats()`` dicts.
* ``GET /v1/readyz`` — readiness: a generation is published, the server
  is not draining, and (when ingest is live) the served generation is
  not stale; 503 otherwise, with the reason.
* ``GET /v1/metrics`` — Prometheus text exposition of the shared
  registry (``Accept: application/json`` or ``?format=json`` returns
  the :func:`repro.obs.export.snapshot` JSON instead).

Concurrent small ``/score`` requests are **micro-batched**: requests
queue into a coalescer, and while the scoring thread is busy with one
kernel dispatch the next dispatch accumulates every request that
arrived meanwhile — one ``score_pairs_packed`` call for all of them
(batching by backpressure; no artificial delay is ever added).

Shutdown is a graceful drain: on SIGTERM the server stops accepting,
``/readyz`` flips to 503, in-flight requests finish (bounded by
``drain_timeout``), the ingest thread is joined, and a final checkpoint
is written when a checkpoint manager is armed — so a rolling restart
loses nothing.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import json
import signal
import threading
import time
import urllib.parse
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.exact.measures import measure_by_name
from repro.graph.io import parse_edge_line
from repro.obs.export import render_prometheus, snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.engine import QueryEngine
from repro.stream.runner import StreamRunner

__all__ = ["Generation", "SketchServer"]

#: Pairs-per-dispatch histogram buckets (counts, not seconds).
_PAIR_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: The HTTP API version this server speaks.  ``/v1/...`` paths are the
#: canonical spellings; unprefixed paths alias to the same handlers,
#: and every response names its version in ``X-Repro-Api-Version``.
_API_VERSION = "1"
_API_PREFIX = f"/v{_API_VERSION}"

#: The attributes the ingest thread publishes to the event-loop side.
#: Everything the asyncio side needs from a swap hangs off the one
#: Generation reference — number, fingerprint, offset, published_at —
#: so one plain assignment is the entire cross-thread protocol.
#: repro-lint's RL004 enforces that no other attribute is written on
#: both sides of the boundary.
_PUBLICATION_ATTRS = frozenset({"_generation"})


class Generation:
    """One immutable served snapshot: engine, identity, provenance.

    Readers treat a published generation as frozen — the engine's store
    is a pack no writer touches again, so any number of concurrent
    requests may score through it while the next generation is being
    built.  ``offset`` records the ingest offset the pack reflects
    (0 for a static predictor), which is what ``/readyz`` compares
    against the live offset to judge staleness.
    """

    __slots__ = ("engine", "number", "fingerprint", "offset", "published_at", "wall_time")

    def __init__(
        self,
        engine: QueryEngine,
        number: int,
        offset: int,
        *,
        published_at: float,
        wall_time: float,
    ) -> None:
        self.engine = engine
        self.number = number
        self.fingerprint = engine.store.fingerprint()
        self.offset = offset
        self.published_at = published_at  # monotonic, for staleness
        self.wall_time = wall_time  # unix, for humans

    def __repr__(self) -> str:
        return (
            f"Generation({self.number}, vertices={self.engine.store.n_vertices}, "
            f"fingerprint={self.fingerprint[:12]}...)"
        )


class _Request:
    """One parsed HTTP request.

    A leading ``/v1`` prefix is normalized away here, so routing and
    handlers see one canonical path whichever spelling the client used.
    """

    __slots__ = ("method", "path", "query", "headers", "body", "close")

    def __init__(self, method: str, target: str, headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        parsed = urllib.parse.urlsplit(target)
        path = parsed.path
        if path == _API_PREFIX or path.startswith(_API_PREFIX + "/"):
            path = path[len(_API_PREFIX):] or "/"
        self.path = path
        self.query = {k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()}
        self.headers = headers
        self.body = body
        self.close = headers.get("connection", "").lower() == "close"


class _HttpError(Exception):
    """A client-visible HTTP failure (status + message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _ScoreBatcher:
    """Coalesce concurrent ``/score`` requests into kernel dispatches.

    Requests enqueue ``(generation, measure, pairs, future)``; a single
    worker task drains whatever is queued, groups it by ``(generation,
    measure)`` and runs **one** ``score_many`` per group in the scoring
    executor.  Because the drain happens only when the executor is
    free, batching scales with load automatically: at one request in
    flight there is no added latency, under concurrency every kernel
    dispatch carries everything that arrived while the previous one
    ran.
    """

    def __init__(
        self,
        executor: concurrent.futures.Executor,
        metrics: MetricsRegistry,
        *,
        max_batch_pairs: int,
    ) -> None:
        self._executor = executor
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self.max_batch_pairs = max_batch_pairs
        self._m_dispatches = metrics.counter(
            "serve_kernel_dispatches_total",
            "score_many kernel dispatches issued by the micro-batcher",
        )
        self._m_coalesced = metrics.counter(
            "serve_coalesced_requests_total",
            "Requests that shared a kernel dispatch with at least one other",
        )
        self._m_batch_pairs = metrics.histogram(
            "serve_kernel_pairs",
            "Pairs per coalesced kernel dispatch",
            buckets=_PAIR_BUCKETS,
        )

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._worker())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def score(self, generation: Generation, pairs: np.ndarray, measure: str) -> np.ndarray:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((generation, measure, pairs, future))
        return await future

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            items = [await self._queue.get()]
            total = len(items[0][2])
            # Opportunistic drain: everything already queued joins this
            # dispatch round, up to the scratch-memory cap.
            while total < self.max_batch_pairs:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                items.append(item)
                total += len(item[2])
            groups: Dict[Tuple[int, str], List] = {}
            for item in items:
                groups.setdefault((item[0].number, item[1]), []).append(item)
            for (_, measure), group in groups.items():
                generation = group[0][0]
                futures = [item[3] for item in group]
                pairs = (
                    group[0][2]
                    if len(group) == 1
                    else np.concatenate([item[2] for item in group])
                )
                self._m_dispatches.inc()
                self._m_batch_pairs.observe(len(pairs))
                if len(group) > 1:
                    self._m_coalesced.inc(len(group))
                try:
                    scores = await loop.run_in_executor(
                        self._executor,
                        functools.partial(generation.engine.score_many, pairs, measure),
                    )
                except Exception as error:  # surface to every waiter
                    for future in futures:
                        if not future.done():
                            future.set_exception(error)
                    continue
                lo = 0
                for item, future in zip(group, futures):
                    hi = lo + len(item[2])
                    if not future.done():
                        future.set_result(scores[lo:hi])
                    lo = hi


class _IngestWorker(threading.Thread):
    """The background write path: drive the runner, refresh on cadence.

    Runs ``runner.run(max_records=chunk)`` legs in a plain thread and
    asks the server to refresh between legs — so packing the live
    predictor never races a concurrent update, and generation builds
    never execute on the event loop.  An exhausted source parks the
    thread on the stop event (re-polling cheaply, which makes a
    growing file behave like a tail -f feed).
    """

    def __init__(self, server: "SketchServer", chunk: int, idle_wait: float) -> None:
        super().__init__(name="repro-serve-ingest", daemon=True)
        self.server = server
        self.chunk = chunk
        self.idle_wait = idle_wait
        self.stop_event = threading.Event()
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        server = self.server
        runner = server.runner
        assert runner is not None
        try:
            while not self.stop_event.is_set():
                before = runner.offset
                runner.run(max_records=self.chunk)
                advanced = runner.offset > before
                server._refresh_if_due(force=not advanced and runner.source_exhausted)
                if not advanced:
                    self.stop_event.wait(self.idle_wait)
        except BaseException as error:  # noqa: BLE001 — surfaced via /healthz
            self.error = error
            server._note_worker_error(error)


class SketchServer:
    """The asyncio HTTP serving tier over a (possibly live) predictor.

    Construct with either a frozen ``predictor`` (static serving — no
    background writes, no refresh) or a warm ``runner`` (the server
    drives its ingest in a background thread and hot-swaps generations
    on the refresh cadence).  Most applications reach this through
    :func:`repro.api.serve` or ``repro-linkpred serve``.

    Parameters
    ----------
    predictor:
        Serve this predictor's current state as generation 1, statically.
    runner:
        A configured (optionally resumed) :class:`StreamRunner`; its
        predictor is packed as generation 1 and its source is consumed
        in the background.  Exactly one of ``predictor``/``runner``.
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port; the bound
        value is available as :attr:`port` once :meth:`wait_ready`
        returns (and is passed to ``announce``).
    refresh_every:
        Seconds between generation hot-swaps (live runners only; a
        refresh is skipped when no records arrived since the last one).
        ``0`` disables periodic refresh — the stream still publishes
        once on exhaustion.
    drain_timeout:
        Seconds the drain waits for in-flight requests on shutdown.
    stale_after:
        ``/readyz`` flips to 503 when the served generation trails the
        ingest offset by more than this many seconds (default
        ``10 * refresh_every``; ``None`` with no refresh cadence
        disables the check).
    ingest_chunk / idle_wait:
        Records per background ``run()`` leg, and the poll interval on
        an exhausted source.
    max_batch_pairs:
        Micro-batcher cap on pairs per coalesced kernel dispatch.
    max_request_pairs / max_body_bytes:
        Per-request limits (413 beyond them).
    keep_history:
        Retain the last N published generations on
        :attr:`history` — the hook the atomicity tests and
        ``bench_e17_serving`` use to re-score responses offline.
        ``0`` (default) keeps none.
    engine_options:
        Passed through to each generation's :class:`QueryEngine`
        (``bands``, ``rows``, ``batch_size``, ...).
    metrics:
        Shared :class:`MetricsRegistry`; defaults to the runner's (so
        one ``/metrics`` scrape covers ``ingest_*``, ``query_*`` and
        ``http_*``) or a fresh one for static serving.
    announce:
        Called once with the served URL after the socket is bound.
    debug_dispatch_delay:
        Test hook: seconds each request handler sleeps (on the event
        loop, per request) before dispatching — lets the drain tests
        hold a request in flight deterministically.
    """

    def __init__(
        self,
        predictor=None,
        *,
        runner: Optional[StreamRunner] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        refresh_every: float = 5.0,
        drain_timeout: float = 10.0,
        stale_after: Optional[float] = None,
        ingest_chunk: int = 2048,
        idle_wait: float = 0.05,
        max_batch_pairs: int = 65536,
        max_request_pairs: int = 100_000,
        max_body_bytes: int = 32 << 20,
        keep_history: int = 0,
        engine_options: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        announce: Optional[Callable[[str], None]] = None,
        debug_dispatch_delay: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if (predictor is None) == (runner is None):
            raise ConfigurationError("pass exactly one of predictor or runner")
        if refresh_every < 0 or drain_timeout < 0:
            raise ConfigurationError("refresh_every and drain_timeout must be >= 0")
        if ingest_chunk < 1:
            raise ConfigurationError(f"ingest_chunk must be positive, got {ingest_chunk}")
        if max_batch_pairs < 1:
            raise ConfigurationError(
                f"max_batch_pairs must be positive, got {max_batch_pairs}"
            )
        self.runner = runner
        self._static_predictor = predictor
        self.max_batch_pairs = max_batch_pairs
        self.host = host
        self.port = port  # rewritten with the bound port in start()
        self.refresh_every = refresh_every
        self.drain_timeout = drain_timeout
        if stale_after is None and refresh_every > 0:
            stale_after = 10.0 * refresh_every
        self.stale_after = stale_after
        self.max_request_pairs = max_request_pairs
        self.max_body_bytes = max_body_bytes
        self.keep_history = keep_history
        self.engine_options = dict(engine_options or {})
        self.announce = announce
        self.debug_dispatch_delay = debug_dispatch_delay
        self.clock = clock
        if metrics is None:
            metrics = runner.metrics if runner is not None else MetricsRegistry()
        self.metrics = metrics
        #: Published generations, newest last (bounded by keep_history).
        self.history: List[Generation] = []
        self._generation: Optional[Generation] = None
        self._started_wall = time.time()
        self._started_mono = clock()
        self._draining = False
        self._inflight = 0
        self._worker_error: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher: Optional[_ScoreBatcher] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._worker = (
            _IngestWorker(self, ingest_chunk, idle_wait) if runner is not None else None
        )
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._ready = threading.Event()  # cross-thread wait_ready()
        self._finished = threading.Event()
        self._connections: set = set()
        # --- instruments (the http_*/serve_* families) -----------------
        self._m_requests = metrics.counter(
            "http_requests_total",
            "HTTP requests served, by endpoint and status code",
            labelnames=("endpoint", "code"),
        )
        self._m_latency = metrics.histogram(
            "http_request_seconds",
            "Wall seconds per request, by endpoint",
            labelnames=("endpoint",),
        )
        metrics.gauge(
            "serve_generation", "Number of the generation currently served"
        ).set_function(lambda: self._generation.number if self._generation else 0)
        metrics.gauge(
            "serve_generation_age_seconds",
            "Seconds since the served generation was published (-1 before the first)",
        ).set_function(
            lambda: -1.0
            if self._generation is None
            else self.clock() - self._generation.published_at
        )
        self._m_swaps = metrics.counter(
            "serve_swaps_total", "Generation hot-swaps since startup (gen 1 included)"
        )
        metrics.gauge(
            "serve_inflight_requests", "Requests currently being handled"
        ).set_function(lambda: self._inflight)
        metrics.gauge(
            "serve_draining", "1 while the server is draining, else 0"
        ).set_function(lambda: int(self._draining))
        metrics.gauge(
            "serve_uptime_seconds", "Seconds since the server started"
        ).set_function(lambda: self.clock() - self._started_mono)

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------

    @property
    def generation(self) -> Optional[Generation]:
        """The currently served generation (readers grab this once)."""
        return self._generation

    @property
    def predictor(self):
        """The live predictor (re-read through the runner, which may
        replace its predictor object on :meth:`StreamRunner.resume`)."""
        return self.runner.predictor if self.runner is not None else self._static_predictor

    def _build_generation(self) -> Generation:
        """Pack the predictor's current state into the next generation.

        Called from the ingest worker between ``run()`` legs (or from
        ``start()`` before serving), so the predictor is quiescent for
        the duration of the pack.
        """
        engine = QueryEngine(self.predictor, metrics=self.metrics, **self.engine_options)
        # The next number is derived from the published generation, not
        # a separate counter — builds happen on one side at a time (the
        # worker thread, or start() before the worker exists), so the
        # read-derive-publish sequence never races, and the server keeps
        # exactly one cross-boundary attribute: the publication itself.
        current = self._generation
        return Generation(
            engine,
            current.number + 1 if current is not None else 1,
            self.runner.offset if self.runner is not None else 0,
            published_at=self.clock(),
            wall_time=time.time(),
        )

    def _publish(self, generation: Generation) -> None:
        # The hot-swap: one reference assignment.  In-flight requests
        # hold the previous Generation object and finish against it.
        self._generation = generation
        self._m_swaps.inc()
        if self.keep_history:
            self.history.append(generation)
            del self.history[: -self.keep_history]

    def refresh(self) -> Generation:
        """Build and publish a new generation now (caller must own the
        predictor's quiet period — the ingest worker does this between
        legs; with a static predictor it is always safe)."""
        generation = self._build_generation()
        self._publish(generation)
        return generation

    def _refresh_if_due(self, force: bool = False) -> None:
        """Worker-thread refresh gate: publish when the cadence elapsed
        (or ``force``) and the committed offset actually advanced."""
        if self.runner is None:
            return
        current = self._generation
        if current is not None and self.runner.offset == current.offset:
            return  # nothing new to publish
        if not force:
            if self.refresh_every <= 0:
                return
            last = current.published_at if current is not None else self._started_mono
            if self.clock() - last < self.refresh_every:
                return
        self.refresh()

    def _note_worker_error(self, error: BaseException) -> None:
        self._worker_error = f"{type(error).__name__}: {error}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, publish generation 1, start ingest."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-score"
        )
        self._batcher = _ScoreBatcher(
            self._executor, self.metrics, max_batch_pairs=self.max_batch_pairs
        )
        self._batcher.start()
        self.refresh()  # generation 1, before any request can arrive
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._worker is not None:
            self._worker.start()
        self._ready.set()
        if self.announce is not None:
            self.announce(f"http://{self.host}:{self.port}")

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block (from any thread) until the server is accepting."""
        return self._ready.wait(timeout)

    def wait_finished(self, timeout: Optional[float] = None) -> bool:
        """Block (from any thread) until :meth:`run` has fully exited."""
        return self._finished.wait(timeout)

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe from any thread or signal."""
        loop = self._loop
        if loop is None or self._shutdown_requested is None:
            return
        loop.call_soon_threadsafe(self._shutdown_requested.set)

    async def serve_until_shutdown(self) -> None:
        """:meth:`start`, then block until a drain completes."""
        await self.start()
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self._drain()

    def run(self, *, install_signals: bool = True) -> int:
        """Synchronous entry point: serve until SIGTERM/SIGINT, drain,
        return the process exit code (0 on a clean drain)."""
        try:
            asyncio.run(self._main(install_signals))
            return 0
        finally:
            self._finished.set()

    async def _main(self, install_signals: bool) -> None:
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or platform without support
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self._drain()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, checkpoint, stop."""
        self._draining = True  # /readyz goes 503 immediately
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._idle is not None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout or None)
        except asyncio.TimeoutError:
            pass  # give up on stragglers; the registry records them as in flight
        for writer in list(self._connections):
            writer.close()
        if self._worker is not None:
            self._worker.stop_event.set()
            await asyncio.get_running_loop().run_in_executor(None, self._worker.join)
        if (
            self.runner is not None
            and self.runner.checkpoints is not None
            and self._worker is not None
            and self._worker.error is None
        ):
            # The final checkpoint: a restart resumes exactly here.
            await asyncio.get_running_loop().run_in_executor(None, self.runner.checkpoint)
        if self._batcher is not None:
            await self._batcher.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    writer.write(self._render_error(error.status, str(error), close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._respond(request)
                writer.write(payload)
                await writer.drain()
                if request.close or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between keep-alive requests
        except asyncio.LimitOverrunError:
            raise _HttpError(431, "request head too large") from None
        try:
            text = head.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0 or length > self.max_body_bytes:
            raise _HttpError(413, f"body of {length} bytes exceeds {self.max_body_bytes}")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return _Request(method.upper(), target, headers, body)

    def _render(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close or self._draining else 'keep-alive'}",
            f"X-Repro-Api-Version: {_API_VERSION}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    def _render_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> bytes:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return self._render(status, body, _JSON, extra_headers)

    def _render_error(self, status: int, message: str, close: bool = False) -> bytes:
        body = (json.dumps({"error": message}) + "\n").encode("utf-8")
        return self._render(status, body, _JSON, close=close)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _endpoint_of(self, request: _Request) -> str:
        path = request.path
        if path == "/score":
            return "score"
        if path.startswith("/topk/"):
            return "topk"
        if path in ("/healthz", "/readyz", "/metrics"):
            return path[1:]
        return "other"

    async def _respond(self, request: _Request) -> bytes:
        endpoint = self._endpoint_of(request)
        started = self.clock()
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()
        status = 500
        try:
            payload = await self._dispatch(request, endpoint)
            status = payload[0]
            return payload[1]
        except _HttpError as error:
            status = error.status
            return self._render_error(error.status, str(error))
        except ReproError as error:
            # Bad measure, malformed pairs, engine misuse: client errors.
            status = 400
            return self._render_error(400, str(error))
        except Exception as error:  # noqa: BLE001 — keep the server up
            status = 500
            return self._render_error(500, f"{type(error).__name__}: {error}")
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            self._m_requests.labels(endpoint, str(status)).inc()
            self._m_latency.labels(endpoint).observe(self.clock() - started)

    async def _dispatch(self, request: _Request, endpoint: str) -> Tuple[int, bytes]:
        if endpoint == "score":
            if request.method != "POST":
                raise _HttpError(405, "POST /v1/score")
            return await self._handle_score(request)
        if endpoint == "topk":
            if request.method != "GET":
                raise _HttpError(405, "GET /v1/topk/<vertex>")
            return await self._handle_topk(request)
        if request.method != "GET":
            raise _HttpError(405, f"GET /{endpoint}")
        if endpoint == "healthz":
            return self._handle_healthz()
        if endpoint == "readyz":
            return self._handle_readyz()
        if endpoint == "metrics":
            return self._handle_metrics(request)
        raise _HttpError(404, f"no route for {request.path!r}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _generation_or_503(self) -> Generation:
        generation = self._generation
        if generation is None:
            raise _HttpError(503, "no generation published yet")
        return generation

    def _parse_pairs(self, request: _Request) -> Tuple[np.ndarray, Optional[str]]:
        """Decode a /score body into an ``(m, 2)`` int64 batch.

        JSON bodies may also carry the measure; text bodies are the
        CLI's pair-file format (``u v`` per line, ``#`` comments).
        """
        content_type = request.headers.get("content-type", "").split(";")[0].strip()
        measure = None
        if content_type == _JSON or (
            not content_type and request.body.lstrip()[:1] in (b"{", b"[")
        ):
            try:
                document = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise _HttpError(400, f"request body is not JSON: {error}") from None
            if isinstance(document, list):
                raw_pairs = document
            elif isinstance(document, dict):
                raw_pairs = document.get("pairs")
                measure = document.get("measure")
            else:
                raise _HttpError(400, "JSON body must be an object or a pair list")
            if not isinstance(raw_pairs, list):
                raise _HttpError(400, 'JSON body needs a "pairs" list of [u, v] pairs')
            try:
                pairs = np.asarray(raw_pairs, dtype=np.int64)
            except (TypeError, ValueError, OverflowError) as error:
                raise _HttpError(400, f"pairs are not integer [u, v] rows: {error}") from None
            if pairs.size == 0:
                pairs = pairs.reshape(0, 2)
            if pairs.ndim != 2 or pairs.shape[1] != 2:
                raise _HttpError(400, f"pairs must be (m, 2), got shape {pairs.shape}")
        else:
            try:
                text = request.body.decode("utf-8")
            except UnicodeDecodeError as error:
                raise _HttpError(400, f"text body is not UTF-8: {error}") from None
            rows = []
            for line_number, line in enumerate(text.splitlines(), start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith(("#", "%")):
                    continue
                try:
                    edge = parse_edge_line(stripped, line_number=line_number)
                except ReproError as error:
                    raise _HttpError(400, f"pair line {line_number}: {error}") from None
                rows.append((edge.u, edge.v))
            pairs = np.asarray(rows, dtype=np.int64).reshape(len(rows), 2)
        if len(pairs) > self.max_request_pairs:
            raise _HttpError(
                413,
                f"{len(pairs)} pairs exceeds the per-request limit of "
                f"{self.max_request_pairs}; split the batch",
            )
        return pairs, measure

    async def _handle_score(self, request: _Request) -> Tuple[int, bytes]:
        generation = self._generation_or_503()
        if self.debug_dispatch_delay:
            # Test hook: hold the request in flight *after* it resolved
            # its generation — the window the atomicity and drain tests
            # need to be deterministic about.
            await asyncio.sleep(self.debug_dispatch_delay)
        pairs, body_measure = self._parse_pairs(request)
        measure = body_measure or request.query.get("measure") or "jaccard"
        measure_by_name(measure)  # 400 on unknown measures, before queueing
        assert self._batcher is not None
        scores = await self._batcher.score(generation, pairs, measure)
        headers = {
            "X-Repro-Generation": str(generation.number),
            "X-Repro-Fingerprint": generation.fingerprint,
        }
        if request.query.get("format") == "csv":
            lines = [f"u,v,{measure}"]
            lines += [
                f"{int(u)},{int(v)},{float(s)!r}"
                for (u, v), s in zip(pairs.tolist(), scores.tolist())
            ]
            body = ("\n".join(lines) + "\n").encode("utf-8")
            return 200, self._render(200, body, _TEXT, headers)
        payload = {
            "measure": measure,
            "generation": generation.number,
            "fingerprint": generation.fingerprint,
            "results": [
                {"u": int(u), "v": int(v), "score": float(s)}
                for (u, v), s in zip(pairs.tolist(), scores.tolist())
            ],
        }
        return 200, self._render_json(200, payload, headers)

    async def _handle_topk(self, request: _Request) -> Tuple[int, bytes]:
        generation = self._generation_or_503()
        vertex_text = request.path[len("/topk/"):]
        try:
            vertex = int(vertex_text)
        except ValueError:
            raise _HttpError(400, f"vertex must be an integer, got {vertex_text!r}") from None
        measure = request.query.get("measure", "jaccard")
        try:
            k = int(request.query.get("k", "10"))
        except ValueError:
            raise _HttpError(400, "k must be an integer") from None
        prune_text = request.query.get("prune")
        prune = None if prune_text is None else prune_text.lower() not in ("0", "false", "no")
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        # Through the scoring executor: serializes with the batcher, so
        # the lazy LSH index build is single-threaded per generation.
        ranked = await loop.run_in_executor(
            self._executor,
            functools.partial(generation.engine.top_k, vertex, measure, k=k, prune=prune),
        )
        payload = {
            "vertex": vertex,
            "measure": measure,
            "generation": generation.number,
            "fingerprint": generation.fingerprint,
            "results": [{"v": int(v), "score": float(s)} for v, s in ranked],
        }
        headers = {
            "X-Repro-Generation": str(generation.number),
            "X-Repro-Fingerprint": generation.fingerprint,
        }
        return 200, self._render_json(200, payload, headers)

    def _safe_stats(self, stats_fn: Callable[[], Dict[str, object]]) -> Dict[str, object]:
        """A stats() read that tolerates the ingest thread registering a
        new label series mid-iteration (retry once, then degrade)."""
        for _ in range(2):
            try:
                return stats_fn()
            except RuntimeError:
                continue
        return {"unavailable": "stats raced an ingest update; scrape again"}

    def _handle_healthz(self) -> Tuple[int, bytes]:
        generation = self._generation
        payload: Dict[str, object] = {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": self.clock() - self._started_mono,
            "generation": generation.number if generation else 0,
            "fingerprint": generation.fingerprint if generation else None,
            "inflight": self._inflight,
        }
        if generation is not None:
            payload["engine"] = self._safe_stats(generation.engine.stats)
        if self.runner is not None:
            payload["ingest"] = self._safe_stats(self.runner.stats)
            if self._worker_error:
                payload["ingest_error"] = self._worker_error
        return 200, self._render_json(200, payload)

    def _readiness(self) -> Tuple[bool, str]:
        """The /readyz verdict: (ready, reason)."""
        if self._draining:
            return False, "draining"
        generation = self._generation
        if generation is None:
            return False, "no generation published"
        if self._worker_error:
            return False, f"ingest worker failed: {self._worker_error}"
        if (
            self.runner is not None
            and self.stale_after is not None
            and self.runner.offset > generation.offset
            and self.clock() - generation.published_at > self.stale_after
        ):
            return False, (
                f"generation {generation.number} is stale: ingest is at offset "
                f"{self.runner.offset} but the pack reflects {generation.offset} "
                f"and no refresh happened for > {self.stale_after:.1f}s"
            )
        return True, "ok"

    def _handle_readyz(self) -> Tuple[int, bytes]:
        ready, reason = self._readiness()
        generation = self._generation
        status = 200 if ready else 503
        payload: Dict[str, object] = {
            "ready": ready,
            "reason": reason,
            "generation": generation.number if generation else 0,
            "generation_age_seconds": (
                self.clock() - generation.published_at if generation else -1.0
            ),
        }
        if self.runner is not None:
            payload["ingest_offset"] = self.runner.offset
            payload["generation_offset"] = generation.offset if generation else 0
        return status, self._render_json(status, payload)

    def _handle_metrics(self, request: _Request) -> Tuple[int, bytes]:
        wants_json = request.query.get("format") == "json" or _JSON in request.headers.get(
            "accept", ""
        )
        if wants_json:
            body = (json.dumps(snapshot(self.metrics)) + "\n").encode("utf-8")
            return 200, self._render(200, body, _JSON)
        body = render_prometheus(self.metrics).encode("utf-8")
        return 200, self._render(200, body, _PROMETHEUS)

    def __repr__(self) -> str:
        generation = self._generation
        return (
            f"SketchServer({self.host}:{self.port}, "
            f"generation={generation.number if generation else 0}, "
            f"live={self.runner is not None})"
        )
