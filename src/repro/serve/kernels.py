"""The vectorized scoring kernel.

One function, :func:`score_pairs_packed`, evaluates any registered
:class:`~repro.exact.measures.Measure` for a whole batch of vertex
pairs against a :class:`~repro.serve.packed.PackedSketches` snapshot —
the batch analogue of
:meth:`MinHashLinkPredictor._score <repro.core.predictor.MinHashLinkPredictor>`,
kept in lockstep with it by the consistency suite:

* slot collisions are one broadcast equality over ``(m, k)`` slices of
  the packed ``values`` matrix (a slot matches iff both minima are
  equal and non-empty; equality to a non-empty value implies the other
  side is non-empty too, so a single emptiness test suffices),
* the estimator algebra of :mod:`repro.core.estimators` is re-expressed
  as array arithmetic, term-for-term in the same operation order so the
  scalar and batch paths agree to the last float,
* witness weights come from a per-measure ``(n, k)`` weight matrix the
  store resolves once on first use (witness ids and degrees are frozen
  with the pack), so a query is pure gather/multiply — no per-query
  id-to-degree resolution.

Policy parity (pinned by the regression suite): unseen vertices score
0.0 for **every** measure, zero-degree endpoints score 0.0 for
everything but ``preferential_attachment``, self-pairs behave as pairs
of identical neighborhoods.

Measures whose ratio/weight callables are not in the built-in registry
fall back to :func:`numpy.vectorize` over the scalar callable — slower,
still correct, so a user-registered measure never silently misscores.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import SketchStateError
from repro.exact.measures import Measure
from repro.serve.packed import PackedSketches
from repro.sketches.minhash import EMPTY_SLOT

__all__ = ["score_pairs_packed", "collision_counts"]

_F64 = np.float64


def collision_counts(values_u: np.ndarray, values_v: np.ndarray) -> np.ndarray:
    """Per-pair count of matching non-empty slots, ``int64 (m,)``.

    ``values_u``/``values_v`` are aligned ``(m, k)`` slices of a packed
    ``values`` matrix.
    """
    return _match_matrix(values_u, values_v).sum(axis=1)


def _match_matrix(values_u: np.ndarray, values_v: np.ndarray) -> np.ndarray:
    return (values_u == values_v) & (values_u != EMPTY_SLOT)


# ----------------------------------------------------------------------
# Vectorized forms of the registry's ratio / weight callables.  Each
# mirrors its scalar twin in repro.exact.measures term-for-term.
# ----------------------------------------------------------------------


def _jaccard_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    union = du + dv - inter
    return _safe_divide(inter, union)


def _cosine_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    return _safe_divide(inter, np.sqrt(du * dv))


def _sorensen_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    return _safe_divide(2.0 * inter, du + dv)


def _hub_promoted_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    return _safe_divide(inter, np.minimum(du, dv))


def _hub_depressed_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    return _safe_divide(inter, np.maximum(du, dv))


def _lhn_ratio(inter: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    return _safe_divide(inter, du * dv)


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    out = np.zeros(np.broadcast(numerator, denominator).shape, dtype=_F64)
    np.divide(numerator, denominator, out=out, where=denominator > 0)
    return out


_VECTOR_RATIOS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]] = {
    "jaccard": _jaccard_ratio,
    "cosine": _cosine_ratio,
    "sorensen": _sorensen_ratio,
    "hub_promoted": _hub_promoted_ratio,
    "hub_depressed": _hub_depressed_ratio,
    "leicht_holme_newman": _lhn_ratio,
}


def _adamic_adar_weights(degrees: np.ndarray) -> np.ndarray:
    return 1.0 / np.log(np.maximum(degrees, 2).astype(_F64))


def _resource_allocation_weights(degrees: np.ndarray) -> np.ndarray:
    return 1.0 / np.maximum(degrees, 1).astype(_F64)


_VECTOR_WEIGHTS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "adamic_adar": _adamic_adar_weights,
    "resource_allocation": _resource_allocation_weights,
}


def _ratio_of(measure: Measure) -> Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    known = _VECTOR_RATIOS.get(measure.name)
    if known is not None:
        return known
    return np.vectorize(measure.ratio, otypes=[_F64])


def _weights_of(measure: Measure) -> Callable[[np.ndarray], np.ndarray]:
    known = _VECTOR_WEIGHTS.get(measure.name)
    if known is not None:
        return known
    return np.vectorize(measure.witness_weight, otypes=[_F64])


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def score_pairs_packed(
    store: PackedSketches,
    us: np.ndarray,
    vs: np.ndarray,
    measure: Measure,
) -> np.ndarray:
    """Score ``measure`` for every pair ``(us[i], vs[i])``; ``f64 (m,)``.

    Matches the per-pair scalar path measure-for-measure (see module
    docstring for the policy guarantees).  Witness-sum measures other
    than ``common_neighbors`` need a witness-tracking store and raise
    :class:`~repro.errors.SketchStateError` without one, exactly like
    the scalar path.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.shape != vs.shape:
        raise SketchStateError(
            f"pair arrays disagree in shape: {us.shape} vs {vs.shape}"
        )
    scores = np.zeros(len(us), dtype=_F64)
    if len(us) == 0 or store.n_vertices == 0:
        return scores
    rows_u = store.rows_of(us)
    rows_v = store.rows_of(vs)
    seen = np.flatnonzero((rows_u >= 0) & (rows_v >= 0))
    if len(seen) == 0:
        return scores
    ru = rows_u[seen]
    rv = rows_v[seen]
    du = store.degrees[ru].astype(_F64)
    dv = store.degrees[rv].astype(_F64)
    if measure.kind == "degree_product":
        scores[seen] = du * dv
        return scores
    live = np.flatnonzero((du > 0) & (dv > 0))
    if len(live) == 0:
        return scores
    idx = seen[live]
    ru, rv, du, dv = ru[live], rv[live], du[live], dv[live]
    matches = _match_matrix(store.values[ru], store.values[rv])
    j = matches.sum(axis=1) / _F64(store.k)
    if measure.name == "jaccard":
        scores[idx] = j
        return scores
    if measure.kind == "overlap_ratio" or measure.name == "common_neighbors":
        intersection = _intersection_estimate(j, du, dv)
        if measure.name == "common_neighbors":
            scores[idx] = intersection
        else:
            scores[idx] = _ratio_of(measure)(intersection, du, dv)
        return scores
    # General witness sums (Adamic–Adar, resource allocation, ...).
    if store.witnesses is None:
        raise SketchStateError(
            f"measure {measure.name!r} needs witness tracking; "
            "construct with SketchConfig(track_witnesses=True)"
        )
    union = (du + dv) / (1.0 + j)
    all_weights = store.witness_weight_matrix(measure.name, _weights_of(measure))
    weights = np.where(matches, all_weights[ru], 0.0)
    raw = np.maximum(0.0, union * weights.sum(axis=1) / _F64(store.k))
    ceiling = np.minimum(du, dv) * measure.witness_weight(2)  # type: ignore[misc]
    scores[idx] = np.minimum(raw, ceiling)
    return scores


def _intersection_estimate(j: np.ndarray, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
    """Vector twin of
    :func:`repro.core.estimators.common_neighbors_from_jaccard`:
    ``J·(du+dv)/(1+J)``, clamped into ``[0, min(du, dv)]``."""
    raw = np.where(j > 0, j * (du + dv) / (1.0 + j), 0.0)
    ceiling = np.minimum(du, dv)
    return np.where(ceiling > 0, np.clip(raw, 0.0, ceiling), 0.0)
